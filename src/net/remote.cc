#include "net/remote.h"

#include <chrono>
#include <memory>
#include <stdexcept>

#include "gc/instance.h"
#include "gc/ot.h"
#include "gc/ot_ext.h"
#include "gc/streaming.h"
#include "net/net_channel.h"

namespace haac {

namespace {

using Clock = std::chrono::steady_clock;

/** Tag for the garbler's sim-OT burn seed (mixed with the private
 *  garbling seed; never derivable from anything on the wire). */
constexpr uint64_t kSimBurnTag = 0x73696d5f6f74ull; // "sim_ot"

/**
 * Circuit agreement check + OT parameters + segmenting, 38 bytes.
 *
 * Wire layout (little-endian), which tests/test_net.cc parses when it
 * plays a hand-rolled peer: six u32 shape fields (offsets 0..23), the
 * shared sim-OT pad seed (offset 24, u64), segmentTables (offset 32,
 * u32), otMode (offset 36, u8: 0 = sim-ot, 1 = iknp), otCached
 * (offset 37, u8: 1 = this session reuses the connection's cached
 * base-OT + IKNP setup and skips the base phase).
 *
 * The sim-OT seed is *fresh randomness*, not a derivation of the
 * garbling seed: the evaluator sees it in cleartext, and the old
 * otSeedFrom(seed) derivation was an invertible mix — a receiver
 * could recover the garbling seed and with it the burn pads, i.e.
 * both labels of every OT.
 */
struct Fingerprint
{
    uint32_t garblerInputs = 0;
    uint32_t evaluatorInputs = 0;
    uint32_t gates = 0;
    uint32_t andGates = 0;
    uint32_t outputs = 0;
    uint32_t constOne = 0;
    uint64_t otSeed = 0;
    uint32_t segmentTables = 0;
    OtMode otMode = OtMode::Iknp;
    bool otCached = false;

    static constexpr size_t kBytes = 6 * 4 + 8 + 4 + 1 + 1;

    static Fingerprint
    of(const Netlist &nl)
    {
        Fingerprint fp;
        fp.garblerInputs = nl.numGarblerInputs;
        fp.evaluatorInputs = nl.numEvaluatorInputs;
        fp.gates = nl.numGates();
        fp.andGates = nl.numAndGates();
        fp.outputs = uint32_t(nl.outputs.size());
        fp.constOne = nl.constOne;
        return fp;
    }

    void
    serialize(uint8_t out[kBytes]) const
    {
        size_t at = 0;
        auto u32 = [&](uint32_t v) {
            for (int i = 0; i < 4; ++i)
                out[at++] = uint8_t(v >> (8 * i));
        };
        u32(garblerInputs);
        u32(evaluatorInputs);
        u32(gates);
        u32(andGates);
        u32(outputs);
        u32(constOne);
        for (int i = 0; i < 8; ++i)
            out[at++] = uint8_t(otSeed >> (8 * i));
        u32(segmentTables);
        out[at++] = otMode == OtMode::Iknp ? 1 : 0;
        out[at++] = otCached ? 1 : 0;
    }

    static Fingerprint
    deserialize(const uint8_t in[kBytes])
    {
        size_t at = 0;
        auto u32 = [&] {
            uint32_t v = 0;
            for (int i = 0; i < 4; ++i)
                v |= uint32_t(in[at++]) << (8 * i);
            return v;
        };
        Fingerprint fp;
        fp.garblerInputs = u32();
        fp.evaluatorInputs = u32();
        fp.gates = u32();
        fp.andGates = u32();
        fp.outputs = u32();
        fp.constOne = u32();
        uint64_t seed = 0;
        for (int i = 0; i < 8; ++i)
            seed |= uint64_t(in[at++]) << (8 * i);
        fp.otSeed = seed;
        fp.segmentTables = u32();
        fp.otMode = in[at++] != 0 ? OtMode::Iknp : OtMode::Simulated;
        fp.otCached = in[at++] != 0;
        return fp;
    }

    /** Shape equality (OT parameters / segmenting are garbler's). */
    bool
    sameCircuit(const Fingerprint &o) const
    {
        return garblerInputs == o.garblerInputs &&
               evaluatorInputs == o.evaluatorInputs &&
               gates == o.gates && andGates == o.andGates &&
               outputs == o.outputs && constOne == o.constOne;
    }

    std::string
    shapeString() const
    {
        return "g=" + std::to_string(garblerInputs) +
               " e=" + std::to_string(evaluatorInputs) +
               " gates=" + std::to_string(gates) +
               " ands=" + std::to_string(andGates) +
               " outs=" + std::to_string(outputs) +
               " const=" + std::to_string(constOne);
    }
};

uint32_t
clampSegment(uint32_t segment_tables)
{
    return segment_tables > 0 ? segment_tables : 1;
}

/** Live garbling: labels and tables from a two-phase garbler. */
struct LiveGarblerSource
{
    StreamingGarbler garbler;

    LiveGarblerSource(const Netlist &netlist, uint64_t seed)
        : garbler(netlist, seed)
    {
    }

    Label
    activeLabel(WireId w, bool value) const
    {
        return garbler.activeLabel(w, value);
    }

    void
    emitTables(NetChannel &chan)
    {
        garbler.run([&](const GarbledTable &t) { chan.sendTable(t); });
    }

    bool decodeBit(size_t i) const { return garbler.decodeBit(i); }
};

/** Replay of a pre-garbled instance (gc/instance.h). */
struct InstanceGarblerSource
{
    const GarbledInstance *instance;

    Label
    activeLabel(WireId w, bool value) const
    {
        return instance->activeLabel(w, value);
    }

    void
    emitTables(NetChannel &chan)
    {
        for (const GarbledTable &t : instance->tables)
            chan.sendTable(t);
    }

    bool decodeBit(size_t i) const { return instance->decodeBit(i); }
};

/**
 * The garbler's protocol, parameterized over where labels and tables
 * come from (a live StreamingGarbler or a captured GarbledInstance) —
 * the wire traffic is identical either way.
 *
 * @param sim_burn_seed secret seed for sim-OT burn pads (unused under
 *        IKNP); must never be derivable from on-wire values.
 */
template <typename Source>
RemoteResult
runGarblerFrom(const Netlist &netlist,
               const std::vector<bool> &garbler_bits,
               Transport &transport, Source &src,
               uint64_t sim_burn_seed, bool pooled,
               const RemoteOptions &opts)
{
    if (garbler_bits.size() != netlist.numGarblerInputs)
        throw std::invalid_argument(
            "runRemoteGarbler: wrong garbler input count");

    const uint32_t segment_tables = clampSegment(opts.segmentTables);
    const auto start = Clock::now();

    RemoteResult res;
    res.gates = netlist.numGates();
    res.segmentTables = segment_tables;
    res.otMode = opts.otMode;
    res.pooledGarbling = pooled;
    NetChannel chan(transport, size_t(segment_tables) * kTableBytes);

    const uint32_t eval_base = netlist.numGarblerInputs;
    const uint32_t m = netlist.numEvaluatorInputs;

    // Base-OT cache: reuse only when this connection already holds a
    // ready extension sender (the first IKNP session populates it).
    OtConnectionCache *ot_cache =
        opts.otMode == OtMode::Iknp ? opts.otCache : nullptr;
    const bool reuse_ot = ot_cache != nullptr &&
                          ot_cache->sender != nullptr &&
                          ot_cache->sender->ready() && m > 0;
    res.otSetupReused = reuse_ot;

    // Fingerprint: agree on the circuit before any label moves.
    Fingerprint fp = Fingerprint::of(netlist);
    fp.otSeed = randomSeed();
    fp.segmentTables = segment_tables;
    fp.otMode = opts.otMode;
    fp.otCached = reuse_ot;
    uint8_t fp_bytes[Fingerprint::kBytes];
    fp.serialize(fp_bytes);
    chan.sendBytes(fp_bytes, sizeof(fp_bytes));
    chan.flush();
    res.controlBytes += sizeof(fp_bytes);

    if (opts.otMode == OtMode::Iknp) {
        // --- Real OT phase (before any other label traffic). ---
        size_t base = chan.bytesSent();
        const size_t uplink_base = chan.bytesReceived();
        if (m > 0) {
            std::unique_ptr<OtExtSender> fresh;
            OtExtSender *ot = nullptr;
            if (reuse_ot) {
                ot_cache->sender->rebind(chan, chan);
                ot = ot_cache->sender.get();
            } else {
                fresh = std::make_unique<OtExtSender>(chan, chan,
                                                      otRandomKey());
                fresh->setup(); // blocks on evaluator's base-OT key
                ot = fresh.get();
            }
            std::vector<Label> m0(m), m1(m);
            for (uint32_t i = 0; i < m; ++i) {
                m0[i] = src.activeLabel(eval_base + i, false);
                m1[i] = src.activeLabel(eval_base + i, true);
            }
            ot->send(m0, m1);
            if (ot_cache != nullptr && fresh != nullptr)
                ot_cache->sender = std::move(fresh);
        }
        if (netlist.constOne != kNoWire)
            chan.sendLabel(src.activeLabel(netlist.constOne, true));
        res.otBytes = chan.bytesSent() - base;
        res.otUplinkBytes = chan.bytesReceived() - uplink_base;
        chan.flush();

        // Garbler's own input labels, flushed so the table stream
        // starts on a frame boundary (both sides' segment counters
        // must window the same frames).
        base = chan.bytesSent();
        for (uint32_t i = 0; i < netlist.numGarblerInputs; ++i)
            chan.sendLabel(src.activeLabel(i, garbler_bits[i]));
        res.inputLabelBytes = chan.bytesSent() - base;
        chan.flush();
    } else {
        // --- Simulated OT: evaluator uplinks its choices in the
        // clear; pads come from the fingerprint's fresh shared seed,
        // burns from a secret seed that never hits the wire. ---
        std::vector<uint8_t> choices(m);
        if (!choices.empty())
            chan.recvBytes(choices.data(), choices.size());
        res.controlBytes += choices.size();

        size_t base = chan.bytesSent();
        for (uint32_t i = 0; i < netlist.numGarblerInputs; ++i)
            chan.sendLabel(src.activeLabel(i, garbler_bits[i]));
        res.inputLabelBytes = chan.bytesSent() - base;

        base = chan.bytesSent();
        OtSender ot(chan, fp.otSeed, sim_burn_seed);
        for (uint32_t i = 0; i < m; ++i) {
            const WireId wire = eval_base + i;
            ot.send(src.activeLabel(wire, false),
                    src.activeLabel(wire, true), choices[i] != 0);
        }
        if (netlist.constOne != kNoWire)
            chan.sendLabel(src.activeLabel(netlist.constOne, true));
        res.otBytes = chan.bytesSent() - base;
        chan.flush();
    }

    // Table stream: one frame per segment of tables.
    size_t base = chan.bytesSent();
    const uint64_t frames_before = transport.framesSent();
    src.emitTables(chan);
    chan.flush();
    res.tableBytes = chan.bytesSent() - base;
    res.tableSegments = transport.framesSent() - frames_before;

    // Output decode bits.
    base = chan.bytesSent();
    for (size_t i = 0; i < netlist.outputs.size(); ++i)
        chan.sendBit(src.decodeBit(i));
    res.outputDecodeBytes = chan.bytesSent() - base;
    chan.flush();

    // Result echo: the evaluator decodes first and shares the output.
    res.outputs.resize(netlist.outputs.size());
    for (size_t i = 0; i < res.outputs.size(); ++i)
        res.outputs[i] = chan.recvBit();
    res.controlBytes += res.outputs.size();

    res.totalBytes = res.tableBytes + res.inputLabelBytes + res.otBytes +
                     res.outputDecodeBytes;
    res.seconds = std::chrono::duration<double>(Clock::now() - start)
                      .count();
    return res;
}

} // namespace

RemoteResult
runRemoteGarbler(const Netlist &netlist,
                 const std::vector<bool> &garbler_bits,
                 Transport &transport, uint64_t seed,
                 const RemoteOptions &opts)
{
    LiveGarblerSource src(netlist, seed);
    return runGarblerFrom(netlist, garbler_bits, transport, src,
                          splitmix64(seed ^ kSimBurnTag), false, opts);
}

RemoteResult
runRemoteGarbler(const Netlist &netlist,
                 const std::vector<bool> &garbler_bits,
                 Transport &transport, const GarbledInstance &instance,
                 const RemoteOptions &opts)
{
    if (instance.inputZero.size() != netlist.numInputs() ||
        instance.outputZero.size() != netlist.outputs.size() ||
        instance.tables.size() != netlist.numAndGates())
        throw std::invalid_argument(
            "runRemoteGarbler: instance does not match the netlist");
    InstanceGarblerSource src{&instance};
    // The instance's garbling seed is gone by design; sim-OT burn
    // pads draw fresh entropy instead (they only need to be secret
    // and unrelated to anything on the wire).
    return runGarblerFrom(netlist, garbler_bits, transport, src,
                          splitmix64(randomSeed() ^ kSimBurnTag), true,
                          opts);
}

RemoteResult
runRemoteEvaluator(const Netlist &netlist,
                   const std::vector<bool> &evaluator_bits,
                   Transport &transport, const RemoteOptions &opts)
{
    if (evaluator_bits.size() != netlist.numEvaluatorInputs)
        throw std::invalid_argument(
            "runRemoteEvaluator: wrong evaluator input count");

    const auto start = Clock::now();
    RemoteResult res;
    res.gates = netlist.numGates();
    NetChannel chan(transport,
                    size_t(clampSegment(opts.segmentTables)) *
                        kTableBytes);

    uint8_t fp_bytes[Fingerprint::kBytes];
    chan.recvBytes(fp_bytes, sizeof(fp_bytes));
    res.controlBytes += sizeof(fp_bytes);
    const Fingerprint remote_fp = Fingerprint::deserialize(fp_bytes);
    res.segmentTables = remote_fp.segmentTables;
    res.otMode = remote_fp.otMode;
    const Fingerprint local_fp = Fingerprint::of(netlist);
    if (!remote_fp.sameCircuit(local_fp))
        throw NetError("remote circuit mismatch: local {" +
                       local_fp.shapeString() + "} vs garbler {" +
                       remote_fp.shapeString() + "}");

    const uint32_t eval_base = netlist.numGarblerInputs;
    const uint32_t m = netlist.numEvaluatorInputs;
    std::vector<Label> inputs(netlist.numInputs());

    if (remote_fp.otMode == OtMode::Iknp) {
        // --- Real OT phase, mirroring the garbler. The fingerprint's
        // otCached byte decides for both sides whether the base phase
        // runs: a garbler reusing its cached extension sender would
        // deadlock against a fresh receiver (and vice versa). ---
        res.otSetupReused = remote_fp.otCached;
        const size_t uplink_base = chan.bytesSent();
        size_t base = chan.bytesReceived();
        if (m > 0) {
            OtConnectionCache *cache = opts.otCache;
            std::unique_ptr<OtExtReceiver> fresh;
            OtExtReceiver *ot = nullptr;
            if (remote_fp.otCached) {
                if (cache == nullptr || cache->receiver == nullptr ||
                    !cache->receiver->ready())
                    throw NetError("garbler expects a cached OT setup, "
                                   "but this connection has none");
                cache->receiver->rebind(chan, chan);
                ot = cache->receiver.get();
            } else {
                fresh = std::make_unique<OtExtReceiver>(chan, chan,
                                                        otRandomKey());
                fresh->start();
                fresh->setup();
                ot = fresh.get();
            }
            ot->sendChoices(evaluator_bits);
            const std::vector<Label> labels = ot->receiveLabels();
            for (uint32_t i = 0; i < m; ++i)
                inputs[eval_base + i] = labels[i];
            if (cache != nullptr && fresh != nullptr)
                cache->receiver = std::move(fresh);
        }
        if (netlist.constOne != kNoWire)
            inputs[netlist.constOne] = chan.recvLabel();
        res.otBytes = chan.bytesReceived() - base;
        res.otUplinkBytes = chan.bytesSent() - uplink_base;

        // Garbler input labels.
        base = chan.bytesReceived();
        for (uint32_t i = 0; i < netlist.numGarblerInputs; ++i)
            inputs[i] = chan.recvLabel();
        res.inputLabelBytes = chan.bytesReceived() - base;
    } else {
        // Send OT choice bits.
        std::vector<uint8_t> choices(m);
        for (uint32_t i = 0; i < m; ++i)
            choices[i] = evaluator_bits[i] ? 1 : 0;
        if (!choices.empty())
            chan.sendBytes(choices.data(), choices.size());
        chan.flush();
        res.controlBytes += choices.size();

        // Garbler input labels.
        size_t base = chan.bytesReceived();
        for (uint32_t i = 0; i < netlist.numGarblerInputs; ++i)
            inputs[i] = chan.recvLabel();
        res.inputLabelBytes = chan.bytesReceived() - base;

        // Own inputs via simulated OT + the public constant.
        base = chan.bytesReceived();
        OtReceiver ot(chan, remote_fp.otSeed);
        for (uint32_t i = 0; i < m; ++i)
            inputs[eval_base + i] = ot.receive(evaluator_bits[i]);
        if (netlist.constOne != kNoWire)
            inputs[netlist.constOne] = chan.recvLabel();
        res.otBytes = chan.bytesReceived() - base;
    }

    // Evaluate, pulling tables from the stream as they arrive.
    size_t base = chan.bytesReceived();
    const uint64_t frames_before = transport.framesReceived();
    std::vector<Label> out_labels = evaluateStreaming(
        netlist, inputs, [&] { return chan.recvTable(); });
    res.tableBytes = chan.bytesReceived() - base;
    res.tableSegments = transport.framesReceived() - frames_before;

    // Decode.
    base = chan.bytesReceived();
    res.outputs.resize(out_labels.size());
    std::vector<bool> decode(netlist.outputs.size());
    for (size_t i = 0; i < decode.size(); ++i)
        decode[i] = chan.recvBit();
    res.outputDecodeBytes = chan.bytesReceived() - base;
    for (size_t i = 0; i < out_labels.size(); ++i)
        res.outputs[i] = out_labels[i].lsb() != decode[i];

    // Echo the result so the garbler learns it too.
    for (bool b : res.outputs)
        chan.sendBit(b);
    chan.flush();
    res.controlBytes += res.outputs.size();

    res.totalBytes = res.tableBytes + res.inputLabelBytes + res.otBytes +
                     res.outputDecodeBytes;
    res.seconds = std::chrono::duration<double>(Clock::now() - start)
                      .count();
    return res;
}

} // namespace haac
