#include "net/loopback.h"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>

namespace haac {

/** One direction of the loopback connection. */
struct LoopbackTransport::Pipe
{
    explicit Pipe(size_t window) : capacity(std::max<size_t>(1, window))
    {}

    std::mutex mutex;
    std::condition_variable readable;
    std::condition_variable writable;
    std::deque<uint8_t> bytes;
    const size_t capacity;
    bool closed = false;

    void
    write(const uint8_t *data, size_t n)
    {
        std::unique_lock<std::mutex> lock(mutex);
        for (size_t put = 0; put < n;) {
            // Flow control: block while the window is full; the reader
            // opens it back up as it drains (or close() unblocks us).
            writable.wait(lock, [&] {
                return closed || bytes.size() < capacity;
            });
            if (closed)
                throw NetError("loopback: peer closed");
            const size_t take =
                std::min(n - put, capacity - bytes.size());
            bytes.insert(bytes.end(), data + put, data + put + take);
            put += take;
            readable.notify_one();
        }
    }

    void
    read(uint8_t *data, size_t n)
    {
        std::unique_lock<std::mutex> lock(mutex);
        for (size_t got = 0; got < n;) {
            readable.wait(lock, [&] {
                return !bytes.empty() || closed;
            });
            if (bytes.empty())
                throw NetError("loopback: peer closed");
            const size_t take =
                std::min(n - got, bytes.size());
            std::copy(bytes.begin(), bytes.begin() + long(take),
                      data + got);
            bytes.erase(bytes.begin(), bytes.begin() + long(take));
            got += take;
            writable.notify_one();
        }
    }

    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            closed = true;
        }
        readable.notify_all();
        writable.notify_all();
    }
};

LoopbackTransport::LoopbackTransport(std::shared_ptr<Pipe> out,
                                     std::shared_ptr<Pipe> in,
                                     const char *side)
    : out_(std::move(out)), in_(std::move(in)), side_(side)
{
}

LoopbackTransport::~LoopbackTransport()
{
    out_->close();
    in_->close();
}

std::pair<std::unique_ptr<LoopbackTransport>,
          std::unique_ptr<LoopbackTransport>>
LoopbackTransport::createPair(size_t window_bytes)
{
    auto a_to_b = std::make_shared<Pipe>(window_bytes);
    auto b_to_a = std::make_shared<Pipe>(window_bytes);
    std::unique_ptr<LoopbackTransport> a(
        new LoopbackTransport(a_to_b, b_to_a, "loopback:a"));
    std::unique_ptr<LoopbackTransport> b(
        new LoopbackTransport(b_to_a, a_to_b, "loopback:b"));
    return {std::move(a), std::move(b)};
}

void
LoopbackTransport::writeAll(const uint8_t *data, size_t n)
{
    out_->write(data, n);
}

void
LoopbackTransport::readAll(uint8_t *data, size_t n)
{
    in_->read(data, n);
}

std::string
LoopbackTransport::describe() const
{
    return side_;
}

} // namespace haac
