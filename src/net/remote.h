/**
 * @file
 * The two-machine GC protocol: one side of runProtocol() per process.
 *
 * Both parties hold the same Netlist (the circuit is public; a
 * 38-byte fingerprint exchanged up front catches disagreement before
 * any label moves and carries the garbler's OT mode + base-OT cache
 * decision). The protocol
 * then runs the OT phase — real base-OT + IKNP extension by default
 * (gc/ot_ext.h), the deterministic simulation under
 * OtMode::Simulated — after which the garbler streams input labels,
 * garbled tables in segments, and decode bits, while the evaluator
 * consumes tables the moment they arrive via the gc/streaming
 * machinery: memory stays O(wires) while communication is
 * O(AND gates).
 *
 * Byte accounting matches the in-process ProtocolResult *exactly*,
 * category by category (tables, input labels, OT down- and uplink,
 * output decode): the four downlink categories count protocol payload
 * in the garbler→evaluator direction, otUplinkBytes the real OT's
 * evaluator→garbler traffic, all measured identically by both sides.
 * The circuit fingerprint, the simulation's plaintext choice bits,
 * and the result echo that lets the garbler learn the output too are
 * control traffic, reported separately — the in-process baseline has
 * no analogue for them.
 */
#ifndef HAAC_NET_REMOTE_H
#define HAAC_NET_REMOTE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "circuit/netlist.h"
#include "gc/ot.h"
#include "gc/ot_ext.h"
#include "net/transport.h"

namespace haac {

struct GarbledInstance;

/**
 * Per-connection OT-extension state for base-OT caching.
 *
 * The Chou-Orlandi base phase costs ~385 Curve25519 scalar
 * multiplications and 4 KB of traffic per side; the IKNP extension it
 * bootstraps handles any number of batches afterwards (column PRGs
 * and the hash tweak base advance per batch). A caller that keeps one
 * of these alive across sessions on a single connection pays the base
 * phase once: the first IKNP session populates it, and every later
 * session rebinds the endpoint to its own NetChannel and reuses the
 * extension directly. The garbler announces reuse in the fingerprint
 * (otCached byte), so both sides always agree on whether the base
 * phase runs. Never share one cache across connections or threads —
 * the two extension endpoints advance in lockstep only because
 * sessions on one connection are sequential.
 */
struct OtConnectionCache
{
    std::unique_ptr<OtExtSender> sender;     ///< garbler side
    std::unique_ptr<OtExtReceiver> receiver; ///< evaluator side
};

struct RemoteOptions
{
    /** Garbled tables per streamed segment frame (>= 1). */
    uint32_t segmentTables = 1024;
    /**
     * OT construction for the evaluator's input labels. The garbler's
     * setting governs (carried to the evaluator in the fingerprint,
     * like segmentTables); real IKNP OT is the default, the
     * simulation stays selectable for deterministic traffic tests.
     */
    OtMode otMode = OtMode::Iknp;
    /**
     * Borrowed per-connection OT cache (IKNP only); null runs the
     * base-OT phase every session, the pre-cache behavior.
     */
    OtConnectionCache *otCache = nullptr;
};

/** One party's view of a completed remote execution. */
struct RemoteResult
{
    /** Decoded circuit outputs (both parties learn them). */
    std::vector<bool> outputs;

    /** @name Garbler→evaluator payload, same categories as
     *  ProtocolResult (identical on both sides of the wire). */
    /// @{
    uint64_t tableBytes = 0;
    uint64_t inputLabelBytes = 0;
    uint64_t otBytes = 0;
    uint64_t outputDecodeBytes = 0;
    uint64_t totalBytes = 0;
    /// @}

    /**
     * Evaluator→garbler OT traffic (base-OT public key + masked
     * columns); zero under the simulation, whose only uplink is the
     * plaintext choice bits counted as control traffic.
     */
    uint64_t otUplinkBytes = 0;
    /** OT construction this session actually ran (garbler's pick). */
    OtMode otMode = OtMode::Iknp;

    /** Fingerprint + sim-OT choice bits + result echo (both ways). */
    uint64_t controlBytes = 0;
    /** Frames the table stream used (one per segment). */
    uint64_t tableSegments = 0;
    /**
     * Tables per segment the garbler actually streamed with — the
     * garbler's setting, carried to the evaluator in the fingerprint
     * (the evaluator's own option does not shape the stream).
     */
    uint32_t segmentTables = 0;
    uint64_t gates = 0;
    double seconds = 0;

    /** This session reused a cached base-OT + IKNP setup. */
    bool otSetupReused = false;
    /** Garbler replayed a pre-garbled instance (serve/pool.h). */
    bool pooledGarbling = false;

    double
    gatesPerSecond() const
    {
        return seconds > 0 ? double(gates) / seconds : 0;
    }
};

/**
 * Run the garbler's side over an established (handshaken) transport.
 *
 * @param garbler_bits this party's input bits (size numGarblerInputs).
 */
RemoteResult runRemoteGarbler(const Netlist &netlist,
                              const std::vector<bool> &garbler_bits,
                              Transport &transport, uint64_t seed,
                              const RemoteOptions &opts = {});

/**
 * Garbler's side replaying a pre-garbled @p instance (gc/instance.h)
 * instead of garbling inline: labels and tables come from the
 * capture, so the session-time cost is OT + streaming only. Traffic
 * is byte-identical to the inline overload at the instance's seed.
 *
 * @p instance must have been captured from this exact @p netlist and
 * must never be replayed twice (label reuse across sessions).
 */
RemoteResult runRemoteGarbler(const Netlist &netlist,
                              const std::vector<bool> &garbler_bits,
                              Transport &transport,
                              const GarbledInstance &instance,
                              const RemoteOptions &opts = {});

/**
 * Run the evaluator's side over an established (handshaken) transport.
 *
 * @param evaluator_bits this party's input bits.
 */
RemoteResult runRemoteEvaluator(const Netlist &netlist,
                                const std::vector<bool> &evaluator_bits,
                                Transport &transport,
                                const RemoteOptions &opts = {});

} // namespace haac

#endif // HAAC_NET_REMOTE_H
