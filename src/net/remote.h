/**
 * @file
 * The two-machine GC protocol: one side of runProtocol() per process.
 *
 * Both parties hold the same Netlist (the circuit is public; a
 * 36-byte fingerprint exchanged up front catches disagreement before
 * any label moves). The garbler then streams — input labels, OT
 * messages, garbled tables in segments, decode bits — while the
 * evaluator consumes tables the moment they arrive via the
 * gc/streaming machinery, so neither side ever materializes the
 * table vector: memory stays O(wires) while communication is
 * O(AND gates).
 *
 * Byte accounting matches the in-process ProtocolResult *exactly*,
 * category by category (tables, input labels, OT, output decode):
 * the categories count protocol payload in the garbler→evaluator
 * direction, measured identically by both sides. The evaluator's
 * uplink (OT choice bits, the result echo that lets the garbler
 * learn the output too) and the circuit fingerprint are control
 * traffic, reported separately — the in-process baseline has no
 * analogue for them.
 */
#ifndef HAAC_NET_REMOTE_H
#define HAAC_NET_REMOTE_H

#include <cstdint>
#include <vector>

#include "circuit/netlist.h"
#include "net/transport.h"

namespace haac {

struct RemoteOptions
{
    /** Garbled tables per streamed segment frame (>= 1). */
    uint32_t segmentTables = 1024;
};

/** One party's view of a completed remote execution. */
struct RemoteResult
{
    /** Decoded circuit outputs (both parties learn them). */
    std::vector<bool> outputs;

    /** @name Garbler→evaluator payload, same categories as
     *  ProtocolResult (identical on both sides of the wire). */
    /// @{
    uint64_t tableBytes = 0;
    uint64_t inputLabelBytes = 0;
    uint64_t otBytes = 0;
    uint64_t outputDecodeBytes = 0;
    uint64_t totalBytes = 0;
    /// @}

    /** Fingerprint + choice bits + result echo (both directions). */
    uint64_t controlBytes = 0;
    /** Frames the table stream used (one per segment). */
    uint64_t tableSegments = 0;
    /**
     * Tables per segment the garbler actually streamed with — the
     * garbler's setting, carried to the evaluator in the fingerprint
     * (the evaluator's own option does not shape the stream).
     */
    uint32_t segmentTables = 0;
    uint64_t gates = 0;
    double seconds = 0;

    double
    gatesPerSecond() const
    {
        return seconds > 0 ? double(gates) / seconds : 0;
    }
};

/**
 * Run the garbler's side over an established (handshaken) transport.
 *
 * @param garbler_bits this party's input bits (size numGarblerInputs).
 */
RemoteResult runRemoteGarbler(const Netlist &netlist,
                              const std::vector<bool> &garbler_bits,
                              Transport &transport, uint64_t seed,
                              const RemoteOptions &opts = {});

/**
 * Run the evaluator's side over an established (handshaken) transport.
 *
 * @param evaluator_bits this party's input bits.
 */
RemoteResult runRemoteEvaluator(const Netlist &netlist,
                                const std::vector<bool> &evaluator_bits,
                                Transport &transport,
                                const RemoteOptions &opts = {});

} // namespace haac

#endif // HAAC_NET_REMOTE_H
