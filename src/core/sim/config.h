/**
 * @file
 * HAAC accelerator configuration (paper §3, §5 methodology).
 *
 * Defaults match the paper's evaluated design point: 16 GEs, 2 MB SWW,
 * 4 banks per GE, 64 KB of queue SRAM, GEs at 1 GHz with the SWW at
 * 2 GHz, DDR4-4400 at 35.2 GB/s (HBM2 at 512 GB/s as the alternative),
 * Garbler/Evaluator Half-Gate pipelines of 21/18 stages.
 */
#ifndef HAAC_CORE_SIM_CONFIG_H
#define HAAC_CORE_SIM_CONFIG_H

#include <cstddef>
#include <cstdint>

#include "crypto/label.h"

namespace haac {

/** Which party's datapath the accelerator implements (§3.2). */
enum class Role
{
    Garbler,
    Evaluator,
};

/** Off-chip memory technology (§5). */
enum class DramKind
{
    Ddr4,  ///< DDR4-4400, 35.2 GB/s
    Hbm2,  ///< HBM2 PHY, 512 GB/s
};

/** Bytes per GE-cycle (1 GHz GE clock makes GB/s == B/cycle). */
double dramBytesPerCycle(DramKind kind);

struct HaacConfig
{
    uint32_t numGes = 16;
    size_t swwBytes = 2 * 1024 * 1024;
    uint32_t banksPerGe = 4;
    DramKind dram = DramKind::Ddr4;
    Role role = Role::Evaluator;

    /** Cross-GE wire forwarding network (§3.2); off for the ablation. */
    bool forwarding = true;

    /** Total queue SRAM shared by instr/table/OoRW queues (Table 4). */
    size_t queueSramBytes = 64 * 1024;

    /**
     * Outbound (live wires / Garbler tables) write-combining buffer;
     * issue backpressures when it fills, so the Garbler's table
     * stream costs bandwidth just as the Evaluator's does.
     */
    size_t writeBufferBytes = 16 * 1024;

    /** DRAM access latency in GE cycles (stream fill delay). */
    uint32_t dramLatency = 100;

    /**
     * Fraction of the package bandwidth this core sees (1.0 = all of
     * it). The sharded runtime sets 1/M per shard so M cores share one
     * memory package, the measured analogue of bench/ablation_multicore.
     */
    double dramBandwidthScale = 1.0;

    /** @name Pipeline structure (§3.2) */
    /// @{
    uint32_t fetchDecodeStages = 2;
    uint32_t swwReadStages = 3; ///< addr to bank, read, data back
    uint32_t writebackStages = 2;
    uint32_t garblerHalfGateStages = 21;
    uint32_t evaluatorHalfGateStages = 18;
    uint32_t xorStages = 1;
    /// @}

    /** SWW capacity in wires (one label + valid bit per slot). */
    uint32_t swwWires() const { return uint32_t(swwBytes / kLabelBytes); }

    /** Half-window: the slide granularity and default segment size. */
    uint32_t windowHalf() const { return swwWires() / 2; }

    uint32_t totalBanks() const { return numGes * banksPerGe; }

    /** Compute latency of an op in this role. */
    uint32_t
    computeLatency(bool is_and) const
    {
        if (!is_and)
            return xorStages;
        return role == Role::Garbler ? garblerHalfGateStages
                                     : evaluatorHalfGateStages;
    }

    /** Issue-to-operand-consumption depth (fetch/decode + read). */
    uint32_t
    frontendDepth() const
    {
        return fetchDecodeStages + swwReadStages;
    }
};

/**
 * Sliding-window base for an instruction producing address @p out:
 * the window covers [base, base + sww_wires) and slides in half-window
 * steps as the output frontier advances (§3.1.1).
 */
inline uint32_t
windowBase(uint32_t out, uint32_t sww_wires)
{
    const uint32_t half = sww_wires / 2;
    const uint32_t seg = out / half;
    return seg == 0 ? 0 : (seg - 1) * half;
}

/** Is @p addr resident in the SWW when the producer of @p out runs? */
inline bool
inWindow(uint32_t addr, uint32_t out, uint32_t sww_wires)
{
    return addr >= windowBase(out, sww_wires);
}

} // namespace haac

#endif // HAAC_CORE_SIM_CONFIG_H
