#include "core/sim/functional.h"

#include <sstream>
#include <unordered_map>

#include "crypto/prg.h"
#include "gc/evaluator.h"
#include "gc/garbler.h"

namespace haac {

namespace {

/** One wire's full state as the machine tracks it. */
struct WireState
{
    Label zero;   ///< Garbler's zero label
    Label active; ///< Evaluator's active label
    bool plain = false;
    uint32_t addr = kOorAddr; ///< absolute address currently in the slot
    bool valid = false;
};

} // namespace

FunctionalResult
runFunctional(const HaacProgram &prog, const StreamSet &streams,
              const HaacConfig &cfg, const std::vector<bool> &garbler_bits,
              const std::vector<bool> &evaluator_bits, uint64_t seed)
{
    FunctionalResult res;
    auto fail = [&res](const std::string &msg) {
        res.ok = false;
        res.error = msg;
        return res;
    };

    if (garbler_bits.size() != prog.numGarblerInputs)
        return fail("wrong garbler input count");
    if (evaluator_bits.size() != prog.numEvaluatorInputs)
        return fail("wrong evaluator input count");

    const uint32_t sww = cfg.swwWires();

    // --- Input labels (same discipline as the protocol garbler). ---
    Prg prg(seed);
    Label r = prg.nextLabel();
    r.setLsb(true);

    auto inputState = [&](uint32_t addr, const Label &zero) {
        WireState w;
        w.zero = zero;
        const uint32_t g = prog.numGarblerInputs;
        const uint32_t e = prog.numEvaluatorInputs;
        bool bit = false;
        if (addr >= 1 && addr <= g) {
            bit = garbler_bits[addr - 1];
        } else if (addr <= g + e) {
            bit = evaluator_bits[addr - 1 - g];
        } else {
            bit = true; // the constant-one wire
        }
        w.plain = bit;
        w.active = bit ? zero ^ r : zero;
        w.addr = addr;
        w.valid = true;
        return w;
    };

    std::vector<Label> input_zero(prog.numInputs + 1);
    for (uint32_t addr = 1; addr <= prog.numInputs; ++addr)
        input_zero[addr] = prg.nextLabel();

    // --- Memory system. ---
    std::vector<WireState> sww_mem(sww);
    std::unordered_map<uint32_t, WireState> dram;

    // Preload resident inputs (addresses >= the first window base).
    const uint32_t input_base =
        std::max<uint32_t>(1, windowBase(prog.numInputs + 1, sww));
    for (uint32_t addr = input_base; addr <= prog.numInputs; ++addr)
        sww_mem[addr % sww] = inputState(addr, input_zero[addr]);

    auto fetchDram = [&](uint32_t addr) -> WireState {
        if (addr >= 1 && addr <= prog.numInputs)
            return inputState(addr, input_zero[addr]);
        auto it = dram.find(addr);
        if (it == dram.end()) {
            WireState missing;
            missing.valid = false;
            return missing;
        }
        return it->second;
    };

    // --- Execute in the compiler's recorded issue order. ---
    std::vector<size_t> oor_cursor(streams.ge.size(), 0);
    std::vector<size_t> ge_pos(streams.ge.size(), 0);

    for (uint32_t idx : streams.issueOrder) {
        const HaacInstruction &ins = prog.instrs[idx];
        const uint32_t g = streams.geOf[idx];
        const GeStreams &gs = streams.ge[g];
        if (ge_pos[g] >= gs.instrs.size())
            return fail("GE stream exhausted early");
        const HaacInstruction &local = gs.instrs[ge_pos[g]];
        if (gs.instrIdx[ge_pos[g]] != idx)
            return fail("issue order / GE stream mismatch");
        ++ge_pos[g];

        const uint32_t out = prog.outputAddrOf(idx);
        const uint32_t base = windowBase(out, sww);

        auto readOperand = [&](uint32_t abs_addr, uint32_t local_addr,
                               WireState &dst, std::string &err) {
            if (local_addr == kOorAddr) {
                // Pop from this GE's OoRW queue.
                if (oor_cursor[g] >= gs.oorAddrs.size()) {
                    err = "OoRW queue underflow";
                    return false;
                }
                const uint32_t popped = gs.oorAddrs[oor_cursor[g]++];
                ++res.oorPops;
                if (popped != abs_addr) {
                    std::ostringstream os;
                    os << "OoRW pop mismatch: expected " << abs_addr
                       << " got " << popped;
                    err = os.str();
                    return false;
                }
                dst = fetchDram(abs_addr);
                if (!dst.valid) {
                    err = "OoR read of a wire never spilled to DRAM";
                    return false;
                }
                return true;
            }
            if (abs_addr < base) {
                err = "in-window read below the window base";
                return false;
            }
            const WireState &slot = sww_mem[abs_addr % sww];
            if (!slot.valid || slot.addr != abs_addr) {
                std::ostringstream os;
                os << "SWW slot for address " << abs_addr
                   << " holds address " << slot.addr
                   << " (window overwrite bug)";
                err = os.str();
                return false;
            }
            dst = slot;
            return true;
        };

        WireState a, b;
        std::string err;
        if (!readOperand(ins.a, local.a, a, err))
            return fail(err);
        if (ins.op != HaacOp::Not && !readOperand(ins.b, local.b, b, err))
            return fail(err);

        WireState o;
        o.addr = out;
        o.valid = true;
        switch (ins.op) {
          case HaacOp::Xor:
            o.zero = a.zero ^ b.zero;
            o.active = a.active ^ b.active;
            o.plain = a.plain != b.plain;
            break;
          case HaacOp::Not:
            o.zero = a.zero ^ r;
            o.active = a.active;
            o.plain = !a.plain;
            break;
          case HaacOp::And: {
            HalfGateGarbled hg = garbleAnd(a.zero, b.zero, r, ins.tweak);
            o.zero = hg.outZero;
            o.active = evaluateAnd(a.active, b.active, hg.table,
                                   ins.tweak);
            o.plain = a.plain && b.plain;
            break;
          }
          case HaacOp::Nop:
            continue;
        }

        // The garbling invariant, checked on every wire.
        const Label expect = o.plain ? o.zero ^ r : o.zero;
        if (o.active != expect) {
            std::ostringstream os;
            os << "garbling invariant broken at instruction " << idx;
            return fail(os.str());
        }

        WireState &slot = sww_mem[out % sww];
        if (slot.valid)
            ++res.slotOverwrites;
        slot = o;
        if (ins.live) {
            dram[out] = o;
            ++res.liveSpills;
        }
    }

    // --- Decode program outputs (live => available off-chip). ---
    res.outputs.reserve(prog.outputs.size());
    for (uint32_t addr : prog.outputs) {
        WireState w = fetchDram(addr);
        if (!w.valid)
            return fail("program output was never spilled to DRAM");
        const bool decoded = w.active.lsb() != w.zero.lsb();
        if (decoded != w.plain)
            return fail("output decode does not match plaintext");
        res.outputs.push_back(decoded);
    }

    res.ok = true;
    return res;
}

} // namespace haac
