#include "core/sim/config.h"

namespace haac {

double
dramBytesPerCycle(DramKind kind)
{
    switch (kind) {
      case DramKind::Ddr4:
        return 35.2;
      case DramKind::Hbm2:
        return 512.0;
    }
    return 35.2;
}

} // namespace haac
