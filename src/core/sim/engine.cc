#include "core/sim/engine.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <queue>

namespace haac {

namespace {

constexpr uint32_t kNever32 = ~uint32_t(0);

/** Inbound streaming queue fed by the shared DRAM (paper §3.1). */
struct StreamQueue
{
    uint32_t entryBytes = 1;   ///< on-chip occupancy per entry
    uint32_t grantBytes = 1;   ///< DRAM bytes per entry (addr + data)
    uint64_t totalEntries = 0;
    uint64_t granted = 0;
    uint64_t arrived = 0;
    uint64_t consumed = 0;
    uint64_t capacityEntries = 1;
    std::deque<std::pair<uint64_t, uint32_t>> inflight;

    uint64_t
    reserved() const
    {
        return (arrived - consumed) + (granted - arrived);
    }

    bool
    wantsGrant() const
    {
        return granted < totalEntries && reserved() < capacityEntries;
    }

    void
    drainArrivals(uint64_t now)
    {
        while (!inflight.empty() && inflight.front().first <= now) {
            arrived += inflight.front().second;
            inflight.pop_front();
        }
    }

    bool
    available(uint64_t now, uint64_t need = 1)
    {
        drainArrivals(now);
        return arrived - consumed >= need;
    }
};

/** Rolling reservation table for single-ported SWW banks (2 acc/cyc). */
class BankTracker
{
  public:
    static constexpr uint32_t kWindow = 64;

    BankTracker(uint32_t banks)
        : banks_(banks), count_(kWindow * banks, 0),
          stamp_(kWindow * banks, kNever32)
    {}

    bool
    tryAccess(uint64_t cycle, uint32_t bank)
    {
        uint8_t &c = slot(cycle, bank);
        if (c >= 2)
            return false;
        ++c;
        return true;
    }

    void
    forceAccess(uint64_t cycle, uint32_t bank)
    {
        uint8_t &c = slot(cycle, bank);
        if (c < 255)
            ++c;
    }

    /** Read-only count for @p cycle (0 if the slot was recycled). */
    uint8_t
    peek(uint64_t cycle, uint32_t bank) const
    {
        const size_t idx = size_t(cycle % kWindow) * banks_ + bank;
        return stamp_[idx] == uint32_t(cycle) ? count_[idx] : 0;
    }

    uint32_t banks() const { return banks_; }

  private:
    uint8_t &
    slot(uint64_t cycle, uint32_t bank)
    {
        const size_t idx = size_t(cycle % kWindow) * banks_ + bank;
        if (stamp_[idx] != uint32_t(cycle)) {
            stamp_[idx] = uint32_t(cycle);
            count_[idx] = 0;
        }
        return count_[idx];
    }

    uint32_t banks_;
    std::vector<uint8_t> count_;
    std::vector<uint32_t> stamp_;
};

struct GeRunState
{
    const GeStreams *streams = nullptr;
    size_t cursor = 0;
    size_t oorCursor = 0;
    StreamQueue instrQ;
    StreamQueue tableQ; ///< evaluator inbound only
    StreamQueue oorQ;
};

/**
 * The unified engine: one loop covering the compiler's scheduling pass
 * and all three timing modes.
 */
class Engine
{
  public:
    Engine(const HaacProgram &prog, const HaacConfig &cfg,
           const StreamSet *streams, SimMode mode, bool global_dispatch,
           const RemoteWireEnv *remote = nullptr,
           SimProbe *probe = nullptr)
        : prog_(prog), cfg_(cfg), streams_(streams), mode_(mode),
          remote_(remote), probe_(probe),
          globalDispatch_(global_dispatch),
          modelTraffic_(mode == SimMode::Combined ||
                        mode == SimMode::TrafficOnly),
          modelCompute_(mode == SimMode::Combined ||
                        mode == SimMode::ComputeOnly),
          banks_(cfg.totalBanks()),
          encBytes_(encodedInstrBytes(cfg.swwWires()))
    {}

    SimStats run(StreamSet *record);

    /** Post-run: DRAM-ready cycle per export address (shard runs). */
    std::vector<uint64_t>
    exportTimes(const std::vector<uint32_t> &addrs) const
    {
        std::vector<uint64_t> out;
        out.reserve(addrs.size());
        for (uint32_t addr : addrs) {
            uint32_t t = wireDramReady_[addr];
            if (t == kNever32)
                t = wireReady_[addr]; // not live: forwardable cycle
            out.push_back(t == kNever32 ? stats_.cycles : t);
        }
        return out;
    }

  private:
    bool tryIssue(uint64_t t, uint32_t g, GeRunState &ge, uint32_t idx,
                  const HaacInstruction &local, uint64_t *hint);
    void dramStep(uint64_t t);
    void setupQueues();
    void finalizeTrafficStats();

    SimProbeView probeView(uint64_t t);

    const HaacProgram &prog_;
    const HaacConfig &cfg_;
    const StreamSet *streams_;
    SimMode mode_;
    const RemoteWireEnv *remote_;
    SimProbe *probe_;
    bool globalDispatch_;
    bool modelTraffic_;
    bool modelCompute_;

    BankTracker banks_;
    uint32_t encBytes_;
    SimStats stats_;

    std::vector<GeRunState> ges_;
    std::vector<uint32_t> wireReady_;     ///< forwardable cycle per addr
    std::vector<uint32_t> wireDramReady_; ///< cycle the label is in DRAM

    // Input preload stream (addresses [inputBase_, numInputs]).
    uint32_t inputBase_ = 1;
    StreamQueue inputLoad_;

    // Outbound (live wires, garbler tables): availability then drain.
    std::priority_queue<std::pair<uint64_t, uint32_t>,
                        std::vector<std::pair<uint64_t, uint32_t>>,
                        std::greater<>>
        writeEvents_;
    uint64_t writableBytes_ = 0;
    uint64_t scheduledWriteBytes_ = 0;
    uint64_t drainedWriteBytes_ = 0;

    double dramBudget_ = 0;
    size_t rrPtr_ = 0;
    uint64_t lastCompletion_ = 0;
    uint64_t lastDrainCycle_ = 0;
};

void
Engine::setupQueues()
{
    const uint32_t n = cfg_.numGes;
    ges_.resize(n);
    stats_.issuedPerGe.assign(n, 0);

    // Queue SRAM split per GE: 25% instructions, 50% tables, 25% OoRW.
    const size_t per_ge = cfg_.queueSramBytes / n;
    const auto entries = [](size_t bytes, uint32_t entry) {
        return std::max<uint64_t>(1, bytes / entry);
    };

    for (uint32_t g = 0; g < n; ++g) {
        GeRunState &ge = ges_[g];
        if (streams_)
            ge.streams = &streams_->ge[g];
        ge.instrQ.entryBytes = encBytes_;
        ge.instrQ.grantBytes = encBytes_;
        ge.instrQ.capacityEntries = entries(per_ge / 4, encBytes_);
        ge.tableQ.entryBytes = uint32_t(kTableBytes);
        ge.tableQ.grantBytes = uint32_t(kTableBytes);
        ge.tableQ.capacityEntries =
            entries(per_ge / 2, uint32_t(kTableBytes));
        // OoRW entries occupy a label on-chip but cost addr+data DRAM
        // bandwidth (32-bit streamed addresses, §3.1.4).
        ge.oorQ.entryBytes = uint32_t(kLabelBytes);
        ge.oorQ.grantBytes = uint32_t(kLabelBytes) + 4;
        ge.oorQ.capacityEntries =
            entries(per_ge / 4, uint32_t(kLabelBytes));
        if (ge.streams) {
            ge.instrQ.totalEntries = ge.streams->instrs.size();
            ge.tableQ.totalEntries =
                cfg_.role == Role::Evaluator ? ge.streams->tableCount : 0;
            ge.oorQ.totalEntries = ge.streams->oorAddrs.size();
        }
    }

    // Initial SWW residency: inputs at or above the first window base.
    inputBase_ = std::max<uint32_t>(
        1, windowBase(prog_.numInputs + 1, cfg_.swwWires()));
    const uint64_t resident =
        prog_.numInputs >= inputBase_
            ? prog_.numInputs - inputBase_ + 1
            : 0;
    inputLoad_.entryBytes = uint32_t(kLabelBytes);
    inputLoad_.grantBytes = uint32_t(kLabelBytes);
    inputLoad_.totalEntries = resident;
    inputLoad_.capacityEntries = ~uint64_t(0) >> 1; // SWW-backed

    // Instruction outputs are "not yet produced" until their issue
    // sets a real ready time; inputs are ready immediately (ideal
    // memory) or when their preload lands (modelled traffic).
    wireReady_.assign(prog_.numAddrs(), kNever32);
    for (uint32_t w = 0; w <= prog_.numInputs; ++w)
        wireReady_[w] = 0;
    wireDramReady_.assign(prog_.numAddrs(), kNever32);
    // Inputs live in DRAM from the start (host-provided labels).
    for (uint32_t w = 1; w <= prog_.numInputs; ++w)
        wireDramReady_[w] = 0;
    if (modelTraffic_) {
        // Resident inputs become usable when their preload lands.
        for (uint32_t w = inputBase_; w <= prog_.numInputs; ++w)
            wireReady_[w] = kNever32; // set on arrival
    }

    // Remote-produced wires (other shards of the same program) land in
    // the SWW and in DRAM at their announced ready cycles, so both
    // in-window reads and OoRW fetches can proceed.
    if (remote_) {
        for (size_t i = 0; i < remote_->addrs.size(); ++i) {
            const uint32_t when = uint32_t(std::min<uint64_t>(
                remote_->readyCycles[i], kNever32 - 1));
            wireReady_[remote_->addrs[i]] = when;
            wireDramReady_[remote_->addrs[i]] = when;
        }
    }
}

void
Engine::dramStep(uint64_t t)
{
    const double per_cycle =
        dramBytesPerCycle(cfg_.dram) * cfg_.dramBandwidthScale;
    // Budget accrual is capped at a few cycles of bandwidth, but never
    // below one full grant batch (64 B): a bandwidth-split shard core
    // must still be able to save up for a transfer, just more slowly.
    // Full-rate configs (DDR4 35.2 B/c and up) already exceed 64 B, so
    // their arbitration is unchanged.
    dramBudget_ = std::min(dramBudget_ + per_cycle,
                           std::max(4 * per_cycle, 64.0));

    while (!writeEvents_.empty() && writeEvents_.top().first <= t) {
        writableBytes_ += writeEvents_.top().second;
        writeEvents_.pop();
    }

    // Input preload: arrival order is ascending address.
    if (inputLoad_.wantsGrant()) {
        const uint64_t batch =
            std::min<uint64_t>(4, inputLoad_.totalEntries -
                                      inputLoad_.granted);
        const double bytes = double(batch) * inputLoad_.grantBytes;
        if (dramBudget_ >= bytes) {
            dramBudget_ -= bytes;
            const uint64_t arrival = t + cfg_.dramLatency;
            for (uint64_t i = 0; i < batch; ++i) {
                const uint32_t w =
                    inputBase_ + uint32_t(inputLoad_.granted + i);
                wireReady_[w] = uint32_t(arrival);
            }
            inputLoad_.granted += batch;
            inputLoad_.arrived += batch; // tracked via wireReady_
        }
    }

    // Round-robin over GE streams (instr, table, OoRW) plus writes.
    const size_t lanes = ges_.size() * 3 + 1;
    for (size_t step = 0; step < lanes; ++step) {
        const size_t lane = (rrPtr_ + step) % lanes;
        if (lane == lanes - 1) {
            // Outbound drain.
            const uint64_t chunk = std::min<uint64_t>(writableBytes_, 64);
            if (chunk > 0 && dramBudget_ >= double(chunk)) {
                dramBudget_ -= double(chunk);
                writableBytes_ -= chunk;
                drainedWriteBytes_ += chunk;
                lastDrainCycle_ = t;
            }
            continue;
        }
        GeRunState &ge = ges_[lane / 3];
        const size_t kind = lane % 3;
        StreamQueue &q = kind == 0 ? ge.instrQ
                        : kind == 1 ? ge.tableQ
                                    : ge.oorQ;
        if (!q.wantsGrant())
            continue;
        if (kind == 2) {
            // OoRW: one entry at a time; the label must be valid in
            // DRAM before the fetch succeeds (§3.1.4 valid bits).
            const uint32_t addr =
                ge.streams->oorAddrs[size_t(q.granted)];
            const uint32_t ready = wireDramReady_[addr];
            if (ready == kNever32)
                continue; // producer not drained yet; retry
            if (dramBudget_ < double(q.grantBytes))
                continue;
            dramBudget_ -= double(q.grantBytes);
            const uint64_t arrival =
                std::max<uint64_t>(t, ready) + cfg_.dramLatency;
            q.inflight.emplace_back(arrival, 1);
            ++q.granted;
        } else {
            uint64_t batch = std::max<uint64_t>(1, 64 / q.grantBytes);
            batch = std::min(batch, q.totalEntries - q.granted);
            batch = std::min(batch, q.capacityEntries - q.reserved());
            const double bytes = double(batch) * q.grantBytes;
            if (batch == 0 || dramBudget_ < bytes)
                continue;
            dramBudget_ -= bytes;
            q.inflight.emplace_back(t + cfg_.dramLatency,
                                    uint32_t(batch));
            q.granted += batch;
        }
    }
    rrPtr_ = (rrPtr_ + 1) % lanes;
}

bool
Engine::tryIssue(uint64_t t, uint32_t g, GeRunState &ge, uint32_t idx,
                 const HaacInstruction &local, uint64_t *hint)
{
    const HaacInstruction &ins = prog_.instrs[idx];
    const uint32_t out = prog_.outputAddrOf(idx);
    const bool is_and = ins.op == HaacOp::And;
    const bool is_not = ins.op == HaacOp::Not;

    // Stream availability.
    if (modelTraffic_) {
        if (!ge.instrQ.available(t)) {
            ++stats_.stallInstrQueue;
            return false;
        }
        if (is_and && cfg_.role == Role::Evaluator &&
            !ge.tableQ.available(t)) {
            ++stats_.stallTableQueue;
            return false;
        }
    }
    const uint32_t oor_need = (local.a == kOorAddr ? 1 : 0) +
                              (!is_not && local.b == kOorAddr ? 1 : 0);
    if (modelTraffic_ && oor_need > 0 &&
        !ge.oorQ.available(t, oor_need)) {
        ++stats_.stallOorwQueue;
        return false;
    }
    // Outbound backpressure: don't issue write-producing work into a
    // full write buffer.
    const bool writes_out =
        ins.live || (is_and && cfg_.role == Role::Garbler);
    if (modelTraffic_ && writes_out &&
        scheduledWriteBytes_ - drainedWriteBytes_ >=
            cfg_.writeBufferBytes) {
        ++stats_.stallWriteBuffer;
        return false;
    }

    // Operand readiness (forwarding network / SWW valid bits).
    if (modelCompute_) {
        const uint64_t deadline = t + cfg_.frontendDepth();
        uint64_t latest = 0;
        auto checkOperand = [&](uint32_t addr, bool is_oor) {
            // OoR operands are gated by their queue arrival (which in
            // turn waits for the producer's DRAM write). With ideal
            // memory there is no queue, so fall back to the direct
            // dependence check.
            if (is_oor && modelTraffic_)
                return;
            latest = std::max<uint64_t>(latest, wireReady_[addr]);
        };
        checkOperand(ins.a, local.a == kOorAddr);
        if (!is_not)
            checkOperand(ins.b, local.b == kOorAddr);
        if (latest > deadline) {
            ++stats_.stallOperand;
            if (hint && latest != kNever32)
                *hint = std::min<uint64_t>(
                    *hint, latest - cfg_.frontendDepth());
            return false;
        }

        // SWW bank ports for the in-window operand reads.
        auto readBank = [&](uint32_t addr) {
            return banks_.tryAccess(t, addr % cfg_.totalBanks());
        };
        if (local.a != kOorAddr && !readBank(ins.a)) {
            ++stats_.stallBank;
            return false;
        }
        if (!is_not && local.b != kOorAddr && ins.b != ins.a &&
            !readBank(ins.b)) {
            ++stats_.stallBank;
            return false;
        }
    }

    // ---- Issue. ----
    const uint32_t lat = modelCompute_ ? cfg_.computeLatency(is_and) : 0;
    const uint64_t frontend = modelCompute_ ? cfg_.frontendDepth() : 0;
    const uint64_t complete = t + frontend + lat;
    const uint64_t written = complete + (modelCompute_
                                             ? cfg_.writebackStages
                                             : 0);

    if (modelTraffic_) {
        ++ge.instrQ.consumed;
        if (is_and && cfg_.role == Role::Evaluator)
            ++ge.tableQ.consumed;
        ge.oorQ.consumed += oor_need;
        ge.oorCursor += oor_need;
    }

    wireReady_[out] =
        uint32_t(cfg_.forwarding ? complete : written);
    banks_.forceAccess(written, out % cfg_.totalBanks());
    ++stats_.swwWrites;
    stats_.swwReads += (is_not ? 1 : 2) - oor_need;
    if (modelCompute_ && cfg_.forwarding) {
        // Count consumers that beat the SWW write as forward hits.
        // (Approximation: producers finishing within the writeback
        // window of this issue.)
        if (wireReady_[ins.a] + cfg_.writebackStages > t + frontend)
            ++stats_.forwardHits;
    }

    if (ins.live) {
        writeEvents_.emplace(written, uint32_t(kLabelBytes));
        scheduledWriteBytes_ += kLabelBytes;
        wireDramReady_[out] = uint32_t(written);
        ++stats_.liveWires;
    }
    if (is_and && cfg_.role == Role::Garbler) {
        writeEvents_.emplace(written, uint32_t(kTableBytes));
        scheduledWriteBytes_ += kTableBytes;
    }

    switch (ins.op) {
      case HaacOp::And:
        ++stats_.andOps;
        break;
      case HaacOp::Xor:
        ++stats_.xorOps;
        break;
      case HaacOp::Not:
        ++stats_.notOps;
        break;
      case HaacOp::Nop:
        break;
    }
    ++stats_.instructions;
    ++stats_.issuedPerGe[g];
    stats_.oorReads += oor_need;
    lastCompletion_ = std::max(lastCompletion_, written);
    return true;
}

void
Engine::finalizeTrafficStats()
{
    // Analytic totals so accounting is identical across modes. With
    // streams the totals come from the streams themselves, so a shard
    // run counts only its own instructions — instruction, table, OoRW
    // and live-write totals sum to the whole program across shards.
    // Input preload is the exception: every shard core fills its own
    // SWW with the resident input window, so that term is per-core by
    // design (input replication is a real cost of the multi-core
    // split). Without streams (the compiler's scheduling pass) the
    // program is the universe.
    if (streams_) {
        uint64_t instrs = 0, tables = 0, oor = 0, live = 0;
        for (const GeStreams &ge : streams_->ge) {
            instrs += ge.instrs.size();
            tables += ge.tableCount;
            oor += ge.oorAddrs.size();
            for (uint32_t idx : ge.instrIdx)
                live += prog_.instrs[idx].live ? 1 : 0;
        }
        stats_.instrBytes = instrs * encBytes_;
        stats_.tableBytes = tables * kTableBytes;
        stats_.oorAddrBytes = oor * 4;
        stats_.oorDataBytes = oor * kLabelBytes;
        stats_.liveWriteBytes = live * kLabelBytes;
    } else {
        stats_.instrBytes = uint64_t(prog_.instrs.size()) * encBytes_;
        stats_.tableBytes = uint64_t(prog_.numAnd()) * kTableBytes;
        uint64_t live = 0;
        for (const HaacInstruction &ins : prog_.instrs)
            live += ins.live ? 1 : 0;
        stats_.liveWriteBytes = live * kLabelBytes;
    }
    stats_.inputLoadBytes = inputLoad_.totalEntries * kLabelBytes;
}

SimProbeView
Engine::probeView(uint64_t t)
{
    SimProbeView view;
    view.cycle = t;
    view.ges.resize(ges_.size());
    for (size_t g = 0; g < ges_.size(); ++g) {
        GeRunState &ge = ges_[g];
        GeQueueView &v = view.ges[g];
        auto fill = [&](StreamQueue &q, uint64_t &ready, uint64_t &cap,
                        uint64_t &consumed, uint64_t &total) {
            q.drainArrivals(t);
            ready = q.arrived - q.consumed;
            cap = q.capacityEntries;
            consumed = q.consumed;
            total = q.totalEntries;
        };
        fill(ge.instrQ, v.instrReady, v.instrCapacity, v.instrConsumed,
             v.instrTotal);
        fill(ge.tableQ, v.tableReady, v.tableCapacity, v.tableConsumed,
             v.tableTotal);
        fill(ge.oorQ, v.oorReady, v.oorCapacity, v.oorConsumed,
             v.oorTotal);
        if (ge.streams) {
            v.streamPos = ge.cursor;
            v.streamLen = ge.streams->instrs.size();
            if (ge.cursor < ge.streams->instrIdx.size())
                v.nextInstr = ge.streams->instrIdx[ge.cursor];
        }
    }
    view.bankAccesses.resize(banks_.banks());
    for (uint32_t b = 0; b < banks_.banks(); ++b)
        view.bankAccesses[b] = banks_.peek(t, b);
    view.pendingWriteBytes = scheduledWriteBytes_ - drainedWriteBytes_;
    view.stats = &stats_;
    return view;
}

SimStats
Engine::run(StreamSet *record)
{
    setupQueues();

    if (record) {
        record->ge.assign(cfg_.numGes, GeStreams{});
        record->geOf.assign(prog_.instrs.size(), 0);
        record->issueOrder.clear();
        record->issueOrder.reserve(prog_.instrs.size());
    }

    uint64_t t = 0;
    uint64_t issued_total = 0;
    // In replay mode the streams are the universe (a shard run carries
    // a subset of the program); the scheduling pass covers everything.
    uint64_t total = prog_.instrs.size();
    if (!globalDispatch_ && streams_) {
        total = 0;
        for (const GeStreams &ge : streams_->ge)
            total += ge.instrs.size();
    }

    if (globalDispatch_) {
        // Compiler scheduling pass: one global in-order cursor; every
        // cycle, hand the next ready instructions to non-stalled GEs.
        uint32_t head = 0;
        uint32_t rr = 0;
        while (head < total) {
            uint64_t hint = ~uint64_t(0);
            bool any = false;
            for (uint32_t i = 0; i < cfg_.numGes && head < total; ++i) {
                const uint32_t g = (rr + i) % cfg_.numGes;
                HaacInstruction local = prog_.instrs[head];
                if (!tryIssue(t, g, ges_[g], head, local, &hint))
                    break; // strict in-order dispatch
                if (record) {
                    record->geOf[head] = uint8_t(g);
                    record->ge[g].instrIdx.push_back(head);
                    record->issueOrder.push_back(head);
                }
                ++head;
                any = true;
            }
            rr = (rr + 1) % cfg_.numGes;
            if (any || hint == ~uint64_t(0)) {
                ++t;
            } else {
                t = std::max(t + 1, hint);
            }
        }
        issued_total = total;
    } else {
        assert(streams_ && "replay mode requires streams");
        while (issued_total < total ||
               (modelTraffic_ &&
                (writableBytes_ > 0 || !writeEvents_.empty()))) {
            if (modelTraffic_)
                dramStep(t);
            uint64_t hint = ~uint64_t(0);
            bool any = false;
            for (uint32_t g = 0; g < cfg_.numGes; ++g) {
                GeRunState &ge = ges_[g];
                if (!ge.streams || ge.cursor >= ge.streams->instrs.size())
                    continue;
                const uint32_t idx = ge.streams->instrIdx[ge.cursor];
                const HaacInstruction &local =
                    ge.streams->instrs[ge.cursor];
                if (tryIssue(t, g, ge, idx, local, &hint)) {
                    ++ge.cursor;
                    ++issued_total;
                    any = true;
                    if (probe_) {
                        probe_->onIssue(t, g, idx, prog_.instrs[idx],
                                        prog_.outputAddrOf(idx));
                    }
                }
            }
            if (probe_) {
                const SimProbeView view = probeView(t);
                if (!probe_->onCycle(view))
                    break; // aborted: return stats so far
            }
            if (!modelTraffic_ && !any && hint != ~uint64_t(0)) {
                t = std::max(t + 1, hint);
            } else {
                ++t;
            }
            // Writes became drainable only after completion: make sure
            // time advances far enough to drain them.
            if (issued_total == total && modelTraffic_ &&
                writableBytes_ == 0 && !writeEvents_.empty()) {
                t = std::max(t, uint64_t(writeEvents_.top().first));
            }
        }
    }

    finalizeTrafficStats();
    stats_.cycles = std::max({t, lastCompletion_, lastDrainCycle_});
    return stats_;
}

} // namespace

void
SimProbe::onIssue(uint64_t, uint32_t, uint32_t,
                  const HaacInstruction &, uint32_t)
{}

bool
SimProbe::onCycle(const SimProbeView &)
{
    return true;
}

StreamSet
recordSchedule(const HaacProgram &prog, const HaacConfig &cfg)
{
    StreamSet set;
    Engine engine(prog, cfg, nullptr, SimMode::ComputeOnly,
                  /*global_dispatch=*/true);
    engine.run(&set);

    // Derive per-GE local instruction copies and OoRW streams.
    const uint32_t sww = cfg.swwWires();
    for (uint32_t g = 0; g < cfg.numGes; ++g) {
        GeStreams &ge = set.ge[g];
        ge.instrs.reserve(ge.instrIdx.size());
        for (uint32_t idx : ge.instrIdx) {
            HaacInstruction local = prog.instrs[idx];
            const uint32_t base =
                windowBase(prog.outputAddrOf(idx), sww);
            if (local.a < base) {
                ge.oorAddrs.push_back(local.a);
                local.a = kOorAddr;
            }
            if (local.op != HaacOp::Not && local.b < base) {
                ge.oorAddrs.push_back(local.b);
                local.b = kOorAddr;
            }
            if (local.op == HaacOp::And)
                ++ge.tableCount;
            ge.instrs.push_back(local);
        }
        set.totalOor += ge.oorAddrs.size();
    }
    return set;
}

SimStats
runSimulation(const HaacProgram &prog, const HaacConfig &cfg,
              const StreamSet &streams, SimMode mode, SimProbe *probe)
{
    Engine engine(prog, cfg, &streams, mode, /*global_dispatch=*/false,
                  nullptr, probe);
    return engine.run(nullptr);
}

ShardSimResult
runShardSimulation(const HaacProgram &prog, const HaacConfig &cfg,
                   const StreamSet &shard, SimMode mode,
                   const RemoteWireEnv &imports,
                   const std::vector<uint32_t> &exports)
{
    Engine engine(prog, cfg, &shard, mode, /*global_dispatch=*/false,
                  &imports);
    ShardSimResult result;
    result.stats = engine.run(nullptr);
    result.exportReady = engine.exportTimes(exports);
    return result;
}

SimStats
simulate(const HaacProgram &prog, const HaacConfig &cfg, SimMode mode)
{
    StreamSet streams = recordSchedule(prog, cfg);
    return runSimulation(prog, cfg, streams, mode);
}

} // namespace haac
