/**
 * @file
 * Simulation statistics: cycles, stall breakdown, traffic accounting,
 * and component activity counts (feeding the energy model).
 */
#ifndef HAAC_CORE_SIM_STATS_H
#define HAAC_CORE_SIM_STATS_H

#include <algorithm>
#include <cstdint>
#include <vector>

namespace haac {

struct SimStats
{
    /** Total GE cycles from start to last write drained. */
    uint64_t cycles = 0;

    /** Wall-clock seconds at the 1 GHz GE clock. */
    double seconds() const { return double(cycles) * 1e-9; }

    /** @name Instruction mix */
    /// @{
    uint64_t instructions = 0;
    uint64_t andOps = 0;
    uint64_t xorOps = 0;
    uint64_t notOps = 0;
    /// @}

    /** @name Off-chip traffic (bytes) */
    /// @{
    uint64_t instrBytes = 0;
    uint64_t tableBytes = 0;
    uint64_t oorAddrBytes = 0;
    uint64_t oorDataBytes = 0;
    uint64_t liveWriteBytes = 0;
    uint64_t inputLoadBytes = 0;

    uint64_t
    totalTrafficBytes() const
    {
        return instrBytes + tableBytes + oorAddrBytes + oorDataBytes +
               liveWriteBytes + inputLoadBytes;
    }

    /** Wire-only traffic (Table 3 / Fig. 7's blue bars). */
    uint64_t
    wireTrafficBytes() const
    {
        return oorDataBytes + liveWriteBytes + inputLoadBytes;
    }
    /// @}

    /** @name Wire counts (Table 3 is reported in kilo-wires) */
    /// @{
    uint64_t liveWires = 0;
    uint64_t oorReads = 0;
    /// @}

    /** @name Stall breakdown (issue attempts that did not fire) */
    /// @{
    uint64_t stallOperand = 0;
    uint64_t stallInstrQueue = 0;
    uint64_t stallTableQueue = 0;
    uint64_t stallOorwQueue = 0;
    uint64_t stallBank = 0;
    uint64_t stallWriteBuffer = 0;
    /// @}

    /** @name On-chip activity (for the energy model) */
    /// @{
    uint64_t swwReads = 0;
    uint64_t swwWrites = 0;
    uint64_t forwardHits = 0;
    /// @}

    /** Instructions issued per GE (load-balance visibility). */
    std::vector<uint64_t> issuedPerGe;

    /** GE issue-slot utilization in [0, 1]. */
    double
    geUtilization() const
    {
        if (cycles == 0 || issuedPerGe.empty())
            return 0.0;
        return double(instructions) /
               (double(cycles) * double(issuedPerGe.size()));
    }

    /** max/mean issued instructions across GEs (1.0 = perfectly even). */
    double
    loadImbalance() const
    {
        if (issuedPerGe.empty() || instructions == 0)
            return 1.0;
        uint64_t mx = 0;
        for (uint64_t v : issuedPerGe)
            mx = std::max(mx, v);
        const double mean =
            double(instructions) / double(issuedPerGe.size());
        return mean > 0 ? double(mx) / mean : 1.0;
    }
};

} // namespace haac

#endif // HAAC_CORE_SIM_STATS_H
