/**
 * @file
 * Functional HAAC machine: bit-true execution of a compiled program.
 *
 * Runs the Garbler and Evaluator datapaths side by side through the
 * accelerator's memory semantics — the physical SWW (with sliding-
 * window slot reuse), per-GE OoRW queues in compiler-generated pop
 * order, live-bit spills to a DRAM backing store — and checks, on
 * every wire, the garbling invariant
 *     active_label == zero_label ^ (plain_bit ? R : 0).
 *
 * This is the proof that the ISA, the compiler passes (reorder, rename,
 * ESW, stream generation), and the window discipline preserve GC
 * semantics (paper §5 "Correctness": "The simulator is verified to be
 * functionally correct").
 */
#ifndef HAAC_CORE_SIM_FUNCTIONAL_H
#define HAAC_CORE_SIM_FUNCTIONAL_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/compiler/streams.h"
#include "core/isa/program.h"
#include "core/sim/config.h"

namespace haac {

struct FunctionalResult
{
    bool ok = false;
    std::string error;

    /** Decoded circuit outputs (only meaningful when ok). */
    std::vector<bool> outputs;

    uint64_t oorPops = 0;
    uint64_t liveSpills = 0;
    uint64_t slotOverwrites = 0;
};

/**
 * Execute @p prog functionally.
 *
 * @param streams compiler streams (per-GE order and OoRW pops).
 * @param garbler_bits / @p evaluator_bits plaintext inputs.
 * @param seed garbling randomness.
 */
FunctionalResult runFunctional(const HaacProgram &prog,
                               const StreamSet &streams,
                               const HaacConfig &cfg,
                               const std::vector<bool> &garbler_bits,
                               const std::vector<bool> &evaluator_bits,
                               uint64_t seed = 0x4841414331ull);

} // namespace haac

#endif // HAAC_CORE_SIM_FUNCTIONAL_H
