/**
 * @file
 * The HAAC cycle-level performance model (paper §3 and §5 "Simulator").
 *
 * One engine implements three evaluation modes:
 *  - Combined: compute pipelines + streaming queues + shared DRAM;
 *    this produces the headline numbers (Figs. 6, 8, 10).
 *  - ComputeOnly: ideal memory; isolates GE execution (Fig. 7 red).
 *  - TrafficOnly: free compute; isolates off-chip movement (Fig. 7
 *    blue, which the paper further narrows to wire bytes only — see
 *    SimStats::wireTrafficBytes).
 *
 * The same machinery, run compute-only with a global in-order
 * dispatcher, is the compiler's GE-mapping pass (recordSchedule);
 * hardware then replays that mapping, as in the paper.
 */
#ifndef HAAC_CORE_SIM_ENGINE_H
#define HAAC_CORE_SIM_ENGINE_H

#include <cstdint>
#include <vector>

#include "core/compiler/streams.h"
#include "core/isa/program.h"
#include "core/sim/config.h"
#include "core/sim/stats.h"

namespace haac {

enum class SimMode
{
    Combined,
    ComputeOnly,
    TrafficOnly,
};

/**
 * Compiler-side scheduling pass: map instructions to non-stalled GEs
 * cycle by cycle (ideal streams, full hazard model) and record the
 * per-GE order for hardware replay.
 */
StreamSet recordSchedule(const HaacProgram &prog, const HaacConfig &cfg);

/** One GE's streaming-queue occupancy at a probed cycle. */
struct GeQueueView
{
    /** @name Per queue: entries on chip, capacity, consumed, total */
    /// @{
    uint64_t instrReady = 0, instrCapacity = 0, instrConsumed = 0,
             instrTotal = 0;
    uint64_t tableReady = 0, tableCapacity = 0, tableConsumed = 0,
             tableTotal = 0;
    uint64_t oorReady = 0, oorCapacity = 0, oorConsumed = 0,
             oorTotal = 0;
    /// @}

    /** Progress through this GE's instruction stream. */
    uint64_t streamPos = 0, streamLen = 0;

    /** Global index of the next instruction to issue (kNoInstr: done). */
    uint32_t nextInstr = ~uint32_t(0);
};

inline constexpr uint32_t kNoInstr = ~uint32_t(0);

/** Everything a SimProbe sees at the end of a simulated cycle. */
struct SimProbeView
{
    uint64_t cycle = 0;
    std::vector<GeQueueView> ges;

    /** SWW bank-port grants this cycle (index = global bank id). */
    std::vector<uint8_t> bankAccesses;

    /** Outbound write-combining buffer occupancy (bytes). */
    uint64_t pendingWriteBytes = 0;

    const SimStats *stats = nullptr;
};

/**
 * Observation hook for stepping the timing engine cycle by cycle
 * (tools/haac_dbg is the main client). onIssue fires for every issued
 * instruction; onCycle fires once per simulated cycle after that
 * cycle's issue attempts — return false to stop the run early, in
 * which case runSimulation returns the statistics accumulated so far.
 */
class SimProbe
{
  public:
    virtual ~SimProbe() = default;
    virtual void onIssue(uint64_t cycle, uint32_t ge,
                         uint32_t instrIdx, const HaacInstruction &ins,
                         uint32_t outAddr);
    virtual bool onCycle(const SimProbeView &view);
};

/**
 * Run the timing model over a scheduled program.
 *
 * @param prog   compiled program (absolute addresses, live bits set).
 * @param cfg    hardware configuration.
 * @param streams output of buildStreams()/recordSchedule().
 * @param mode   see SimMode.
 * @param probe  optional cycle-by-cycle observer (see SimProbe).
 */
SimStats runSimulation(const HaacProgram &prog, const HaacConfig &cfg,
                       const StreamSet &streams,
                       SimMode mode = SimMode::Combined,
                       SimProbe *probe = nullptr);

/**
 * Wires this engine does not produce itself (they belong to another
 * shard of the same program): each addrs[i] becomes usable — both for
 * in-window operand reads and for OoRW fetches — at readyCycles[i].
 */
struct RemoteWireEnv
{
    std::vector<uint32_t> addrs;
    std::vector<uint64_t> readyCycles; ///< parallel to addrs
};

struct ShardSimResult
{
    SimStats stats;
    /** Cycle each requested export address reaches DRAM, in order. */
    std::vector<uint64_t> exportReady;
};

/**
 * Run the timing model over one shard of a scheduled program: @p shard
 * carries only this shard's GE streams (cfg.numGes must equal
 * shard.ge.size()), @p imports marks when remote-produced wires become
 * usable, and the ready times of @p exports are harvested for the
 * coordinator's cross-shard dependency merge. With an empty import set
 * and the full stream set this is exactly runSimulation().
 */
ShardSimResult runShardSimulation(const HaacProgram &prog,
                                  const HaacConfig &cfg,
                                  const StreamSet &shard, SimMode mode,
                                  const RemoteWireEnv &imports,
                                  const std::vector<uint32_t> &exports);

/** Convenience: build streams and run in one call. */
SimStats simulate(const HaacProgram &prog, const HaacConfig &cfg,
                  SimMode mode = SimMode::Combined);

} // namespace haac

#endif // HAAC_CORE_SIM_ENGINE_H
