#include "core/compiler/depgraph.h"

#include <algorithm>

namespace haac {

DependenceGraph::DependenceGraph(const HaacProgram &prog)
{
    const uint32_t first_out = prog.numInputs + 1;
    levels_.resize(prog.instrs.size());
    for (size_t k = 0; k < prog.instrs.size(); ++k) {
        const HaacInstruction &ins = prog.instrs[k];
        uint32_t lvl = 0;
        if (ins.a >= first_out)
            lvl = std::max(lvl, levels_[ins.a - first_out]);
        if (ins.op != HaacOp::Not && ins.b >= first_out)
            lvl = std::max(lvl, levels_[ins.b - first_out]);
        levels_[k] = lvl + 1;
        numLevels_ = std::max(numLevels_, lvl + 1);
    }
    levelSizes_.assign(numLevels_ + 1, 0);
    for (uint32_t lvl : levels_)
        ++levelSizes_[lvl];
}

double
DependenceGraph::averageIlp() const
{
    if (numLevels_ == 0)
        return 0.0;
    return double(levels_.size()) / double(numLevels_);
}

} // namespace haac
