#include "core/compiler/streams.h"

#include "core/sim/engine.h"

namespace haac {

StreamSet
buildStreams(const HaacProgram &prog, const HaacConfig &cfg)
{
    return recordSchedule(prog, cfg);
}

} // namespace haac
