/**
 * @file
 * Queue-stream generation (paper §4.1, "generate queue streams").
 *
 * The compiler assigns instructions to GEs by running the scheduling
 * simulation ("mapping instructions from the program to non-stalled GEs
 * each cycle in our simulator, saving the order, and replaying it in
 * hardware"), then derives, per GE: the instruction stream (with OoR
 * operands rewritten to the reserved zero address), the implied table
 * order, and the OoR wire-address stream in pop order.
 */
#ifndef HAAC_CORE_COMPILER_STREAMS_H
#define HAAC_CORE_COMPILER_STREAMS_H

#include <cstdint>
#include <vector>

#include "core/isa/program.h"
#include "core/sim/config.h"

namespace haac {

/** The streams feeding one GE. */
struct GeStreams
{
    /** Global program indices of this GE's instructions, in order. */
    std::vector<uint32_t> instrIdx;

    /** Local copies with OoR operands rewritten to kOorAddr. */
    std::vector<HaacInstruction> instrs;

    /** OoR wire addresses, in pop order (a before b, §3.1.4). */
    std::vector<uint32_t> oorAddrs;

    /** AND count == table-queue entries for this GE. */
    uint64_t tableCount = 0;
};

/** The full compiler output consumed by the hardware model. */
struct StreamSet
{
    std::vector<GeStreams> ge;

    /** ge index per global instruction. */
    std::vector<uint8_t> geOf;

    /** Global instruction indices in scheduled issue order. */
    std::vector<uint32_t> issueOrder;

    uint64_t totalOor = 0;
};

/**
 * Build per-GE streams for @p prog on @p cfg.
 *
 * Runs the compute-only scheduling simulation to obtain the GE mapping,
 * then derives table and OoRW streams from the per-GE instruction
 * order.
 */
StreamSet buildStreams(const HaacProgram &prog, const HaacConfig &cfg);

} // namespace haac

#endif // HAAC_CORE_COMPILER_STREAMS_H
