/**
 * @file
 * Leveled dependence graph over a HAAC program (paper §4.2.1).
 *
 * Level(k) = 1 + max(level of producers of k's operands); primary
 * inputs sit at level 0. The level structure exposes all of the
 * program's ILP: instructions within a level are mutually independent.
 * Table 2's "# Levels" and "ILP" columns come straight from here.
 */
#ifndef HAAC_CORE_COMPILER_DEPGRAPH_H
#define HAAC_CORE_COMPILER_DEPGRAPH_H

#include <cstdint>
#include <vector>

#include "core/isa/program.h"

namespace haac {

class DependenceGraph
{
  public:
    explicit DependenceGraph(const HaacProgram &prog);

    /** Dependence level of instruction @p k (1-based; inputs are 0). */
    uint32_t level(size_t k) const { return levels_[k]; }

    /** Circuit depth: the maximum level. */
    uint32_t numLevels() const { return numLevels_; }

    /** Average instructions per level (Table 2's ILP column). */
    double averageIlp() const;

    /** Instruction count per level (index 1..numLevels). */
    const std::vector<uint32_t> &levelSizes() const { return levelSizes_; }

    const std::vector<uint32_t> &levels() const { return levels_; }

  private:
    std::vector<uint32_t> levels_;
    std::vector<uint32_t> levelSizes_;
    uint32_t numLevels_ = 0;
};

} // namespace haac

#endif // HAAC_CORE_COMPILER_DEPGRAPH_H
