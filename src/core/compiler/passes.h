/**
 * @file
 * HAAC compiler passes: reordering, renaming, eliminating spent wires
 * (paper §4.2), plus the pass-pipeline driver.
 *
 * Reordering produces a *permutation* of the program; renaming applies
 * it while rewriting operand addresses so the implicit-output invariant
 * (out(k) = numInputs + 1 + k) holds again. The two are fused in
 * applyOrder() because a reordered-but-unrenamed program is not
 * executable on HAAC (the paper likewise always runs RN after RO).
 */
#ifndef HAAC_CORE_COMPILER_PASSES_H
#define HAAC_CORE_COMPILER_PASSES_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/isa/program.h"

namespace haac {

/** Scheduling strategy (paper §4.2.1 and §6.2). */
enum class ReorderKind
{
    Baseline, ///< keep the frontend's depth-first order
    Full,     ///< global breadth-first (level) order
    Segment,  ///< level order within SWW/2-sized segments
};

const char *reorderKindName(ReorderKind kind);

/**
 * Compute a full (breadth-first) reordering: instructions sorted by
 * dependence level, stable within a level.
 *
 * @return order[i] = original index of the instruction that should run
 *         i-th.
 */
std::vector<uint32_t> reorderFull(const HaacProgram &prog);

/**
 * Segment reordering: partition the baseline order into contiguous
 * segments of @p segment_size instructions and level-sort within each,
 * preserving the baseline's wire locality across segments (§4.2.1).
 */
std::vector<uint32_t> reorderSegment(const HaacProgram &prog,
                                     uint32_t segment_size);

/**
 * Apply a reordering and rename output wires to program order
 * (paper Fig. 5: RO then RN). Input addresses are remapped; live bits
 * travel with their instruction; program outputs are remapped.
 */
HaacProgram applyOrder(const HaacProgram &prog,
                       const std::vector<uint32_t> &order);

/**
 * Eliminating Spent Wires (§4.2.3): set live bits only on wires that
 * are read by some instruction whose SWW window has slid past the
 * producer (i.e. wires that will come back through the OoRW queue) or
 * that are primary outputs. Everything else stays on-chip and is never
 * written to DRAM.
 *
 * @param sww_wires SWW capacity in wires.
 * @return number of live wires.
 */
uint64_t applyEsw(HaacProgram &prog, uint32_t sww_wires);

/** Mark every output live (the paper's no-ESW configuration). */
void clearEsw(HaacProgram &prog);

/** Knobs for the whole pipeline. */
struct CompileOptions
{
    ReorderKind reorder = ReorderKind::Full;
    bool esw = true;
    uint32_t swwWires = (2u * 1024 * 1024) / 16;
    /** 0 = default (half the SWW, the paper's best setting). */
    uint32_t segmentSize = 0;

    /**
     * Run the static verifier (core/isa/verify.h) over the compiled
     * program and throw std::logic_error on any error-level finding.
     * Debug builds always verify (and assert) regardless of this flag;
     * Release builds verify only when it is set — the pass is cheap
     * (one linear scan) but not free on multi-million-gate programs.
     */
    bool verify = false;
};

/** Summary statistics of a compiled program. */
struct CompileStats
{
    uint64_t liveWires = 0;
    uint64_t oorReads = 0;
    uint64_t instructions = 0;
    uint64_t andGates = 0;

    /** @name Circuit cost report (circuit/analyze.h)
     * Filled by Session::compile() from the source netlist — the
     * compiler passes below never see the netlist, only the assembled
     * program, so these ride along rather than being recomputed. */
    /// @{
    /** Max ANDs on any input->output path. */
    uint32_t multDepth = 0;
    /** Share of gates FreeXOR makes free, in percent. */
    double freeXorPercent = 0;
    /// @}
};

/** Run reorder + rename + (optionally) ESW. */
HaacProgram compileProgram(const HaacProgram &baseline,
                           const CompileOptions &opts,
                           CompileStats *stats = nullptr);

/** Count OoR operand reads for a program at a given SWW size. */
uint64_t countOorReads(const HaacProgram &prog, uint32_t sww_wires);

} // namespace haac

#endif // HAAC_CORE_COMPILER_PASSES_H
