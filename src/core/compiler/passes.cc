#include "core/compiler/passes.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

#include "core/compiler/depgraph.h"
#include "core/isa/verify.h"
#include "core/sim/config.h"

namespace haac {

const char *
reorderKindName(ReorderKind kind)
{
    switch (kind) {
      case ReorderKind::Baseline:
        return "Baseline";
      case ReorderKind::Full:
        return "Full";
      case ReorderKind::Segment:
        return "Segment";
    }
    return "?";
}

std::vector<uint32_t>
reorderFull(const HaacProgram &prog)
{
    DependenceGraph graph(prog);
    std::vector<uint32_t> order(prog.instrs.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&graph](uint32_t x, uint32_t y) {
                         return graph.level(x) < graph.level(y);
                     });
    return order;
}

std::vector<uint32_t>
reorderSegment(const HaacProgram &prog, uint32_t segment_size)
{
    assert(segment_size > 0);
    DependenceGraph graph(prog);
    std::vector<uint32_t> order(prog.instrs.size());
    std::iota(order.begin(), order.end(), 0);
    for (size_t lo = 0; lo < order.size(); lo += segment_size) {
        const size_t hi = std::min(order.size(), lo + segment_size);
        std::stable_sort(order.begin() + long(lo), order.begin() + long(hi),
                         [&graph](uint32_t x, uint32_t y) {
                             return graph.level(x) < graph.level(y);
                         });
    }
    return order;
}

HaacProgram
applyOrder(const HaacProgram &prog, const std::vector<uint32_t> &order)
{
    assert(order.size() == prog.instrs.size());
    const uint32_t first_out = prog.numInputs + 1;

    std::vector<uint32_t> newpos(order.size());
    for (uint32_t pos = 0; pos < order.size(); ++pos)
        newpos[order[pos]] = pos;

    auto remap = [&](uint32_t addr) {
        return addr < first_out ? addr
                                : first_out + newpos[addr - first_out];
    };

    HaacProgram out;
    out.numInputs = prog.numInputs;
    out.numGarblerInputs = prog.numGarblerInputs;
    out.numEvaluatorInputs = prog.numEvaluatorInputs;
    out.constOneAddr = prog.constOneAddr;
    out.instrs.reserve(prog.instrs.size());
    for (uint32_t pos = 0; pos < order.size(); ++pos) {
        HaacInstruction ins = prog.instrs[order[pos]];
        ins.a = remap(ins.a);
        ins.b = remap(ins.b);
        out.instrs.push_back(ins);
    }
    out.outputs.reserve(prog.outputs.size());
    for (uint32_t o : prog.outputs)
        out.outputs.push_back(remap(o));

    assert(out.check().empty() && "reordering violated dependences");
    return out;
}

uint64_t
applyEsw(HaacProgram &prog, uint32_t sww_wires)
{
    const uint32_t first_out = prog.numInputs + 1;
    std::vector<bool> live(prog.instrs.size(), false);

    for (size_t k = 0; k < prog.instrs.size(); ++k) {
        const HaacInstruction &ins = prog.instrs[k];
        const uint32_t base = windowBase(prog.outputAddrOf(k), sww_wires);
        auto visit = [&](uint32_t addr) {
            if (addr >= first_out && addr < base)
                live[addr - first_out] = true;
        };
        visit(ins.a);
        if (ins.op != HaacOp::Not)
            visit(ins.b);
    }
    for (uint32_t o : prog.outputs) {
        if (o >= first_out)
            live[o - first_out] = true;
    }

    uint64_t count = 0;
    for (size_t k = 0; k < prog.instrs.size(); ++k) {
        prog.instrs[k].live = live[k];
        count += live[k] ? 1 : 0;
    }
    return count;
}

void
clearEsw(HaacProgram &prog)
{
    for (HaacInstruction &ins : prog.instrs)
        ins.live = true;
}

uint64_t
countOorReads(const HaacProgram &prog, uint32_t sww_wires)
{
    uint64_t count = 0;
    for (size_t k = 0; k < prog.instrs.size(); ++k) {
        const HaacInstruction &ins = prog.instrs[k];
        const uint32_t base = windowBase(prog.outputAddrOf(k), sww_wires);
        count += ins.a < base ? 1 : 0;
        if (ins.op != HaacOp::Not)
            count += ins.b < base ? 1 : 0;
    }
    return count;
}

HaacProgram
compileProgram(const HaacProgram &baseline, const CompileOptions &opts,
               CompileStats *stats)
{
    HaacProgram prog;
    switch (opts.reorder) {
      case ReorderKind::Baseline:
        prog = baseline;
        break;
      case ReorderKind::Full:
        prog = applyOrder(baseline, reorderFull(baseline));
        break;
      case ReorderKind::Segment: {
        const uint32_t seg = opts.segmentSize != 0 ? opts.segmentSize
                                                   : opts.swwWires / 2;
        prog = applyOrder(baseline, reorderSegment(baseline, seg));
        break;
      }
    }

    uint64_t live = 0;
    if (opts.esw) {
        live = applyEsw(prog, opts.swwWires);
    } else {
        clearEsw(prog);
        live = prog.instrs.size();
    }

#ifndef NDEBUG
    const bool check = true;
#else
    const bool check = opts.verify;
#endif
    if (check) {
        // Errors only: a no-ESW compile is all-live by design, and the
        // waste warnings would cost string building per instruction.
        LintOptions lint;
        lint.swwWires = opts.swwWires;
        lint.warnings = false;
        const LintReport rep = verifyProgram(prog, lint);
        assert(rep.clean() && "compiler emitted an ill-formed program");
        if (!rep.clean())
            throw std::logic_error(
                "compileProgram: verifier rejected the output (" +
                rep.summary() + "): " + rep.firstError());
    }

    if (stats) {
        stats->liveWires = live;
        stats->oorReads = countOorReads(prog, opts.swwWires);
        stats->instructions = prog.instrs.size();
        stats->andGates = prog.numAnd();
    }
    return prog;
}

} // namespace haac
