/**
 * @file
 * haac-lint: a static program verifier for the HAAC ISA.
 *
 * Everything here proves properties of a HaacProgram *without running
 * it* — the static complement to the differential conformance harness
 * (core/isa/conformance.h), which can only witness divergence one seed
 * at a time. The checks encode the contracts the rest of the stack
 * assumes:
 *
 *  - **address discipline**: operands name the OoRW sentinel or a wire
 *    at/after their own output (use-before-def). Because the ISA's
 *    output rule is implicit (out(k) = inputs + 1 + k), single
 *    assignment is structural and def-before-use implies the wire
 *    dependence graph is acyclic — so one linear scan proves both.
 *
 *  - **tweak uniqueness**: every AND's tweak keys the correlation-
 *    robust Half-Gate hashes. Two ANDs sharing a tweak collapse their
 *    hash domains, which breaks the security argument — tweak reuse is
 *    an *error*, not a style nit, even though every dynamic check
 *    would still pass on it.
 *
 *  - **liveness soundness** under the SWW window: an operand read
 *    below windowBase(out, swwWires) comes back through the OoRW
 *    queue, which replays DRAM spills — so its producer must carry the
 *    live bit or the hardware fabricates nothing and the run diverges.
 *    This is exactly the functional-divergence class the conformance
 *    fuzzer hunts by luck; the verifier proves its absence. Program
 *    outputs must be live for the same reason (decode reads DRAM).
 *
 *  - **liveness waste**: a live bit on a wire nobody ever reads
 *    off-window (and that is neither a program output nor a shard
 *    export) buys nothing and costs one label of DRAM write traffic —
 *    a warning, quantified in bytes.
 *
 *  - **NOP-output reads**: the plaintext oracle materializes a NOP's
 *    output as false while the machine never writes the wire at all; a
 *    program reading one is ill-formed by fiat.
 *
 *  - **stream consistency** (optional StreamSet): the per-GE queue
 *    streams must partition the program, rewrite exactly the
 *    off-window operands to the OoRW sentinel, and list the OoRW pops
 *    in operand order (a before b).
 *
 *  - **shard-manifest consistency** (optional ShardManifest): every
 *    cross-shard read must appear in the consumer's import list and
 *    the producer's export list, and every export must be live (the
 *    consuming shard fetches it from DRAM).
 *
 * Diagnostics are structured (stable code, severity, instruction
 * index, source line when the caller has one) so the compiler, the
 * assembler, the conformance harness, haac_dbg, and the haac_lint CLI
 * all report through one vocabulary. The code table is documented in
 * docs/ARCHITECTURE.md.
 */
#ifndef HAAC_CORE_ISA_VERIFY_H
#define HAAC_CORE_ISA_VERIFY_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/isa/program.h"

namespace haac {

struct StreamSet; // core/compiler/streams.h

/** Severity of one lint diagnostic. */
enum class LintSeverity
{
    Error,   ///< the program will diverge, crash, or leak — reject it
    Warning, ///< legal but wasteful or fragile
    Note,    ///< context attached to a preceding diagnostic
};

/**
 * Stable diagnostic codes. The enumerator order is the severity-major
 * order used in docs/ARCHITECTURE.md; lintCodeName() gives the
 * kebab-case spelling tools print and tests grep for.
 */
enum class LintCode
{
    // --- errors -----------------------------------------------------
    SentinelOperand,   ///< operand is w0, the reserved OoRW sentinel
    UseBeforeDef,      ///< operand at/after its own output (also: cycle)
    NopOutputRead,     ///< operand or output reads a NOP's output wire
    TweakReuse,        ///< two ANDs share a Half-Gate tweak (security)
    InputSplit,        ///< garbler+evaluator counts don't fit numInputs
    ConstOne,          ///< .const_one discipline violated
    UndefinedOutput,   ///< program output w0 or past the address space
    OutputNotLive,     ///< program output's producer is not live
    DroppedLiveBit,    ///< off-window read of a dead producer
    StreamCoverage,    ///< GE streams don't partition the program
    StreamOorMismatch, ///< OoRW rewrite/pop order wrong for the window
    StreamTableCount,  ///< per-GE table count != its AND count
    ShardManifestBad,  ///< manifest malformed (sizes, ownership)
    ShardImportMissing,///< cross-shard read absent from consumer imports
    ShardExportMissing,///< cross-shard read absent from producer exports
    ShardExportDead,   ///< exported wire's producer is not live
    // --- warnings ---------------------------------------------------
    LivenessWaste,     ///< live bit nobody reads off-window (DRAM waste)
    NoncanonicalOperand,///< NOT/NOP with b != a (breaks round-trip ==)
    StrayTweak,        ///< non-zero tweak on a non-AND instruction
    ShardImportUnused, ///< import entry no instruction justifies
    ShardExportUnused, ///< export entry no other shard imports
};

/** Kebab-case code name, e.g. "tweak-reuse". */
const char *lintCodeName(LintCode code);

/** "error" / "warning" / "note". */
const char *lintSeverityName(LintSeverity sev);

/** Sentinel for diagnostics that are not tied to one instruction. */
inline constexpr uint32_t kNoLintInstr = ~uint32_t(0);

/** One structured finding. */
struct LintDiag
{
    LintCode code = LintCode::UseBeforeDef;
    LintSeverity severity = LintSeverity::Error;

    /** Instruction index, or kNoLintInstr for program-scope findings. */
    uint32_t instr = kNoLintInstr;

    /** Wire address involved (kOorAddr when not applicable). */
    uint32_t addr = kOorAddr;

    /** 1-based .haac source line when the caller supplied a map. */
    uint32_t line = 0;

    std::string message;
};

/**
 * Shard import/export manifest in verifier-neutral form, so core/isa
 * does not depend on src/shard. shard::toLintManifest(plan) converts a
 * ShardPlan (src/shard/partition.h).
 */
struct ShardManifest
{
    /** Owning shard per program instruction. */
    std::vector<uint8_t> shardOfInstr;

    /** Per shard: wire addresses read here, produced elsewhere. */
    std::vector<std::vector<uint32_t>> imports;

    /** Per shard: wire addresses produced here, imported elsewhere. */
    std::vector<std::vector<uint32_t>> exports;
};

struct LintOptions
{
    /**
     * SWW capacity in wires. 0 runs the structural checks only
     * (everything that does not depend on the window geometry) — the
     * right mode for parse-time linting, where no config exists yet.
     */
    uint32_t swwWires = 0;

    /** Emit warnings (liveness waste, manifest slack, canonicality). */
    bool warnings = true;

    /** When set, also check queue-stream consistency. */
    const StreamSet *streams = nullptr;

    /** When set, also check shard import/export consistency. */
    const ShardManifest *shards = nullptr;

    /** Per-instruction 1-based source lines (AsmResult::instrLines). */
    const std::vector<uint32_t> *instrLines = nullptr;
};

struct LintReport
{
    std::vector<LintDiag> diags;
    uint32_t errors = 0;
    uint32_t warnings = 0;
    uint32_t notes = 0;

    /** Avoidable DRAM write traffic from liveness waste, in bytes. */
    uint64_t wasteBytes = 0;

    /** No errors (warnings allowed). */
    bool clean() const { return errors == 0; }

    /** "2 errors, 1 warning" (never empty). */
    std::string summary() const;

    /** First error's message, or "" when clean. */
    std::string firstError() const;
};

/**
 * Run every applicable check over @p prog. Never simulates; runtime is
 * O(instructions · log instructions) and allocation-light, so the
 * compiler can afford it as a post-pass on every Debug build.
 */
LintReport verifyProgram(const HaacProgram &prog,
                         const LintOptions &opts = LintOptions{});

/**
 * One diagnostic as a compiler-style line:
 * "file.haac:12: error[tweak-reuse]: ..." (file and line elided when
 * unknown; instruction index appended as "#k" when known).
 */
std::string formatDiag(const LintDiag &diag,
                       const std::string &file = std::string());

} // namespace haac

#endif // HAAC_CORE_ISA_VERIFY_H
