/**
 * @file
 * The HAAC ISA and program representation (paper §3.1.3).
 *
 * A HAAC instruction carries a 2-bit opcode, two input wire addresses,
 * and a live bit; the output address is implicit (outputs are generated
 * in program order, one address per instruction). Address 0 is reserved
 * to mean "read this operand from the OoRW queue" (§3.1.4).
 *
 * Address discipline: 0 is the OoRW sentinel; primary inputs occupy
 * [1, numInputs]; instruction k writes address numInputs + 1 + k. This
 * invariant holds for every HaacProgram in the repository — the
 * assembler establishes it (canonical netlists already list gate
 * outputs in order) and the compiler's rename pass re-establishes it
 * after reordering.
 *
 * One deviation from the paper's {AND, XOR, NOP}: we add a NOT opcode.
 * EMP netlists contain INV gates and the paper does not specify their
 * lowering; lowering INV to XOR-against-a-constant-wire would turn one
 * public constant into the hottest wire in the program (and a permanent
 * OoRW resident). NOT is free in both roles (Garbler: XOR with R;
 * Evaluator: copy), fits the 2-bit opcode, and keeps streams clean.
 */
#ifndef HAAC_CORE_ISA_PROGRAM_H
#define HAAC_CORE_ISA_PROGRAM_H

#include <cstdint>
#include <vector>

#include "circuit/netlist.h"

namespace haac {

/** HAAC opcode (2 bits). */
enum class HaacOp : uint8_t
{
    Nop = 0,
    And = 1,
    Xor = 2,
    Not = 3,
};

/** Reserved operand address: read from the OoRW queue instead. */
inline constexpr uint32_t kOorAddr = 0;

/**
 * One HAAC instruction.
 *
 * a/b hold *absolute* renamed wire addresses in the program; the
 * stream-generation pass replaces OoR operands with kOorAddr when it
 * builds the per-GE queues. tweak is metadata (not encoded in HW): the
 * original AND index that keys the Half-Gate hashes, kept stable across
 * compiler reorderings so garbler and evaluator stay in agreement.
 */
struct HaacInstruction
{
    HaacOp op = HaacOp::Nop;
    uint32_t a = 0;
    uint32_t b = 0;
    bool live = true;
    uint32_t tweak = 0;
};

/**
 * Field-exact equality: the contract behind the assembler round-trip
 * (`parseAsm(toAsm(prog)) == prog`). Canonical programs keep b == a for
 * NOT and NOP (the b operand is semantically ignored there, and the
 * textual form does not spell it).
 */
inline bool
operator==(const HaacInstruction &x, const HaacInstruction &y)
{
    return x.op == y.op && x.a == y.a && x.b == y.b &&
           x.live == y.live && x.tweak == y.tweak;
}

inline bool
operator!=(const HaacInstruction &x, const HaacInstruction &y)
{
    return !(x == y);
}

/**
 * A complete HAAC program.
 */
struct HaacProgram
{
    /** Primary-input wires occupy addresses [1, numInputs]. */
    uint32_t numInputs = 0;
    uint32_t numGarblerInputs = 0;
    uint32_t numEvaluatorInputs = 0;
    /** Renamed address of the constant-one wire (kOorAddr if none). */
    uint32_t constOneAddr = 0;

    std::vector<HaacInstruction> instrs;

    /** Renamed addresses of the primary outputs, in output order. */
    std::vector<uint32_t> outputs;

    /** Output address of instruction @p k (the ISA's implicit rule). */
    uint32_t outputAddrOf(size_t k) const { return numInputs + 1 + uint32_t(k); }

    /** Total defined addresses (sentinel + inputs + outputs). */
    uint32_t numAddrs() const { return numInputs + 1 + uint32_t(instrs.size()); }

    uint32_t numAnd() const;
    uint32_t numXor() const;
    uint32_t numNot() const;

    /** Validate the address discipline; empty string when valid. */
    std::string check() const;
};

inline bool
operator==(const HaacProgram &x, const HaacProgram &y)
{
    return x.numInputs == y.numInputs &&
           x.numGarblerInputs == y.numGarblerInputs &&
           x.numEvaluatorInputs == y.numEvaluatorInputs &&
           x.constOneAddr == y.constOneAddr && x.instrs == y.instrs &&
           x.outputs == y.outputs;
}

inline bool
operator!=(const HaacProgram &x, const HaacProgram &y)
{
    return !(x == y);
}

/**
 * Assemble a canonical netlist into a baseline HAAC program
 * (paper Fig. 5, "Asmblr").
 *
 * XOR gates whose second operand is the constant-one wire lower to NOT.
 * All live bits start true (the ESW pass clears them later).
 */
HaacProgram assemble(const Netlist &netlist);

/**
 * Plaintext interpretation of a HAAC program: execute the instruction
 * stream on Boolean values (no crypto, no memory system). The fast
 * semantic oracle for compiler-equivalence checks; the functional HAAC
 * machine (core/sim/functional.h) is the slow, full-fidelity one.
 */
std::vector<bool> executePlain(const HaacProgram &prog,
                               const std::vector<bool> &garbler_bits,
                               const std::vector<bool> &evaluator_bits);

/**
 * Instruction encoding size in bytes for a given SWW capacity
 * (2b op + 2 addresses of ceil(log2(sww_wires)) bits + 1b live),
 * e.g. 5 bytes for a 2 MB SWW (the paper's 17-bit addresses).
 */
uint32_t encodedInstrBytes(uint32_t sww_wires);

/** Bit-pack one instruction (physical = addr mod sww_wires). */
uint64_t encodeInstr(const HaacInstruction &ins, uint32_t sww_wires);

/** Inverse of encodeInstr; tweak/absolute addresses are not recovered. */
HaacInstruction decodeInstr(uint64_t bits, uint32_t sww_wires);

} // namespace haac

#endif // HAAC_CORE_ISA_PROGRAM_H
