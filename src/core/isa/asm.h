/**
 * @file
 * HAAC assembler: parse the textual assembly form back into a
 * HaacProgram — the inverse of core/isa/disasm.h.
 *
 * The format is line-oriented. `;` starts a comment. Directives:
 *
 *     .inputs <total> garbler=<G> evaluator=<E>
 *     .const_one w<N>            (required iff total == G + E + 1)
 *     .outputs w<N> ...          (labels allowed; required, may be empty)
 *     .test garbler=<bits> evaluator=<bits> expect=<bits>
 *
 * Instructions follow the disassembler's shape:
 *
 *     [k:] [label:] OP a[, b] [-> wN] [[live]] [(tweak T)] [@geN]
 *
 * with operands written `w<addr>`, as a previously defined label, or as
 * one of the builtin input names the disassembler emits: `g<k>` /
 * `e<k>` for the k-th garbler/evaluator input (0-based) and `one` for
 * the constant-one wire. User labels shadow the builtins (the
 * disassembler never defines labels, so listings stay round-trip
 * safe). A
 * numeric `k:` prefix and a `-> wN` arrow are annotations checked
 * against the ISA's implicit output rule (out(k) = inputs + 1 + k); a
 * symbolic `label:` names the instruction's output wire for later
 * operands. AND instructions without an explicit tweak get the running
 * AND index, matching assemble(). NOT and NOP take one operand and
 * store it in both slots (the canonical form; see operator==).
 *
 * Invariants the parser enforces (each violation is a diagnostic with
 * a line number, never a crash): operands reference only wires defined
 * at that point; w0/`oorw` never appears in program text (the OoRW
 * rewrite is the stream generator's job, not the programmer's); the
 * input split is consistent; `.test` bit-string lengths match the
 * declared inputs and outputs.
 *
 * Beyond the grammar, every successfully parsed program is run through
 * the structural half of the static verifier (core/isa/verify.h,
 * swwWires == 0 — no window geometry exists at parse time). The parser
 * stays permissive: lint findings land in AsmResult::lints with source
 * lines attached and do NOT flip `ok`, so a listing of any
 * address-disciplined program still round-trips; callers that demand
 * lint-clean inputs (the grader, haac_lint) check `lints` themselves.
 */
#ifndef HAAC_CORE_ISA_ASM_H
#define HAAC_CORE_ISA_ASM_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/isa/program.h"
#include "core/isa/verify.h"

namespace haac {

/** One `.test` expectation vector from a .haac source file. */
struct AsmTestVector
{
    std::vector<bool> garbler;
    std::vector<bool> evaluator;
    std::vector<bool> expect;
    uint32_t line = 0;
};

/** Result of parsing HAAC assembly text. */
struct AsmResult
{
    bool ok = false;

    /** "line N: <message>" when !ok. */
    std::string error;
    uint32_t errorLine = 0;

    HaacProgram prog;

    /**
     * `@ge` annotations, one per instruction (empty when the source has
     * none). Advisory: the stream generator recomputes the mapping.
     */
    std::vector<uint8_t> geHints;

    /** Grader expectations (`.test` directives), in file order. */
    std::vector<AsmTestVector> tests;

    /** 1-based source line of each instruction (parallel to instrs). */
    std::vector<uint32_t> instrLines;

    /**
     * Structural verifier findings (LintOptions{.swwWires = 0}) with
     * source lines mapped in. Populated only when `ok`; never flips
     * `ok` — see the file comment.
     */
    std::vector<LintDiag> lints;
};

/** Parse assembly text. Never throws; errors land in AsmResult. */
AsmResult parseAsm(const std::string &text);

/** Parse a .haac file (unreadable file => !ok with errorLine 0). */
AsmResult parseAsmFile(const std::string &path);

} // namespace haac

#endif // HAAC_CORE_ISA_ASM_H
