#include "core/isa/program.h"

#include <cassert>
#include <sstream>

namespace haac {

uint32_t
HaacProgram::numAnd() const
{
    uint32_t n = 0;
    for (const HaacInstruction &i : instrs)
        n += i.op == HaacOp::And ? 1 : 0;
    return n;
}

uint32_t
HaacProgram::numXor() const
{
    uint32_t n = 0;
    for (const HaacInstruction &i : instrs)
        n += i.op == HaacOp::Xor ? 1 : 0;
    return n;
}

uint32_t
HaacProgram::numNot() const
{
    uint32_t n = 0;
    for (const HaacInstruction &i : instrs)
        n += i.op == HaacOp::Not ? 1 : 0;
    return n;
}

std::string
HaacProgram::check() const
{
    for (size_t k = 0; k < instrs.size(); ++k) {
        const HaacInstruction &ins = instrs[k];
        const uint32_t out = outputAddrOf(k);
        if (ins.a == kOorAddr || ins.a >= out)
            return "instruction reads an undefined/sentinel address (a)";
        if (ins.op != HaacOp::Not &&
            (ins.b == kOorAddr || ins.b >= out)) {
            return "instruction reads an undefined/sentinel address (b)";
        }
    }
    for (uint32_t o : outputs) {
        if (o == kOorAddr || o >= numAddrs())
            return "program output address out of range";
    }
    if (constOneAddr != kOorAddr && constOneAddr > numInputs)
        return "constOneAddr must be an input address";
    return "";
}

HaacProgram
assemble(const Netlist &netlist)
{
    assert(netlist.check().empty());
    HaacProgram prog;
    prog.numInputs = netlist.numInputs();
    prog.numGarblerInputs = netlist.numGarblerInputs;
    prog.numEvaluatorInputs = netlist.numEvaluatorInputs;
    prog.constOneAddr =
        netlist.constOne == kNoWire ? kOorAddr : netlist.constOne + 1;

    prog.instrs.reserve(netlist.numGates());
    uint32_t and_index = 0;
    for (uint32_t g = 0; g < netlist.numGates(); ++g) {
        const Gate &gate = netlist.gates[g];
        HaacInstruction ins;
        const uint32_t a = gate.a + 1;
        const uint32_t b = gate.b + 1;
        if (gate.op == GateOp::And) {
            ins.op = HaacOp::And;
            ins.a = a;
            ins.b = b;
            ins.tweak = and_index++;
        } else if (prog.constOneAddr != kOorAddr &&
                   (a == prog.constOneAddr || b == prog.constOneAddr)) {
            // XOR with the public one => free NOT.
            ins.op = HaacOp::Not;
            ins.a = a == prog.constOneAddr ? b : a;
            ins.b = ins.a;
        } else {
            ins.op = HaacOp::Xor;
            ins.a = a;
            ins.b = b;
        }
        ins.live = true;
        prog.instrs.push_back(ins);
    }

    prog.outputs.reserve(netlist.outputs.size());
    for (WireId w : netlist.outputs)
        prog.outputs.push_back(w + 1);

    assert(prog.check().empty());
    return prog;
}

std::vector<bool>
executePlain(const HaacProgram &prog,
             const std::vector<bool> &garbler_bits,
             const std::vector<bool> &evaluator_bits)
{
    assert(garbler_bits.size() == prog.numGarblerInputs);
    assert(evaluator_bits.size() == prog.numEvaluatorInputs);
    std::vector<bool> vals(prog.numAddrs(), false);
    uint32_t addr = 1;
    for (bool b : garbler_bits)
        vals[addr++] = b;
    for (bool b : evaluator_bits)
        vals[addr++] = b;
    if (prog.constOneAddr != kOorAddr)
        vals[prog.constOneAddr] = true;

    for (size_t k = 0; k < prog.instrs.size(); ++k) {
        const HaacInstruction &ins = prog.instrs[k];
        const bool a = vals[ins.a];
        const bool b = vals[ins.b];
        bool out = false;
        switch (ins.op) {
          case HaacOp::And:
            out = a && b;
            break;
          case HaacOp::Xor:
            out = a != b;
            break;
          case HaacOp::Not:
            out = !a;
            break;
          case HaacOp::Nop:
            break;
        }
        vals[prog.outputAddrOf(k)] = out;
    }

    std::vector<bool> outs;
    outs.reserve(prog.outputs.size());
    for (uint32_t o : prog.outputs)
        outs.push_back(vals[o]);
    return outs;
}

namespace {

uint32_t
addrBits(uint32_t sww_wires)
{
    uint32_t bits = 0;
    while ((uint64_t(1) << bits) < sww_wires)
        ++bits;
    return bits;
}

} // namespace

uint32_t
encodedInstrBytes(uint32_t sww_wires)
{
    const uint32_t bits = 2 + 2 * addrBits(sww_wires) + 1;
    return (bits + 7) / 8;
}

uint64_t
encodeInstr(const HaacInstruction &ins, uint32_t sww_wires)
{
    const uint32_t bits = addrBits(sww_wires);
    const uint64_t mask = (uint64_t(1) << bits) - 1;
    uint64_t enc = uint64_t(ins.op) & 0x3;
    enc |= (uint64_t(ins.a % sww_wires) & mask) << 2;
    enc |= (uint64_t(ins.b % sww_wires) & mask) << (2 + bits);
    enc |= uint64_t(ins.live ? 1 : 0) << (2 + 2 * bits);
    return enc;
}

HaacInstruction
decodeInstr(uint64_t enc, uint32_t sww_wires)
{
    const uint32_t bits = addrBits(sww_wires);
    const uint64_t mask = (uint64_t(1) << bits) - 1;
    HaacInstruction ins;
    ins.op = HaacOp(enc & 0x3);
    ins.a = uint32_t((enc >> 2) & mask);
    ins.b = uint32_t((enc >> (2 + bits)) & mask);
    ins.live = ((enc >> (2 + 2 * bits)) & 1) != 0;
    return ins;
}

} // namespace haac
