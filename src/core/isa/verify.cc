#include "core/isa/verify.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "core/compiler/streams.h"
#include "core/isa/disasm.h"
#include "core/sim/config.h"
#include "crypto/label.h"

namespace haac {

const char *
lintCodeName(LintCode code)
{
    switch (code) {
      case LintCode::SentinelOperand:
        return "sentinel-operand";
      case LintCode::UseBeforeDef:
        return "use-before-def";
      case LintCode::NopOutputRead:
        return "nop-output-read";
      case LintCode::TweakReuse:
        return "tweak-reuse";
      case LintCode::InputSplit:
        return "input-split";
      case LintCode::ConstOne:
        return "const-one";
      case LintCode::UndefinedOutput:
        return "undefined-output";
      case LintCode::OutputNotLive:
        return "output-not-live";
      case LintCode::DroppedLiveBit:
        return "dropped-live-bit";
      case LintCode::StreamCoverage:
        return "stream-coverage";
      case LintCode::StreamOorMismatch:
        return "stream-oor-mismatch";
      case LintCode::StreamTableCount:
        return "stream-table-count";
      case LintCode::ShardManifestBad:
        return "shard-manifest";
      case LintCode::ShardImportMissing:
        return "shard-import-missing";
      case LintCode::ShardExportMissing:
        return "shard-export-missing";
      case LintCode::ShardExportDead:
        return "shard-export-dead";
      case LintCode::LivenessWaste:
        return "liveness-waste";
      case LintCode::NoncanonicalOperand:
        return "noncanonical-operand";
      case LintCode::StrayTweak:
        return "stray-tweak";
      case LintCode::ShardImportUnused:
        return "shard-import-unused";
      case LintCode::ShardExportUnused:
        return "shard-export-unused";
    }
    return "?";
}

const char *
lintSeverityName(LintSeverity sev)
{
    switch (sev) {
      case LintSeverity::Error:
        return "error";
      case LintSeverity::Warning:
        return "warning";
      case LintSeverity::Note:
        return "note";
    }
    return "?";
}

std::string
LintReport::summary() const
{
    std::ostringstream os;
    os << errors << (errors == 1 ? " error, " : " errors, ") << warnings
       << (warnings == 1 ? " warning" : " warnings");
    if (notes > 0)
        os << ", " << notes << (notes == 1 ? " note" : " notes");
    return os.str();
}

std::string
LintReport::firstError() const
{
    for (const LintDiag &d : diags)
        if (d.severity == LintSeverity::Error)
            return d.message;
    return "";
}

std::string
formatDiag(const LintDiag &diag, const std::string &file)
{
    std::ostringstream os;
    if (!file.empty()) {
        os << file << ':';
        if (diag.line > 0)
            os << diag.line << ':';
        os << ' ';
    } else if (diag.line > 0) {
        os << "line " << diag.line << ": ";
    }
    os << lintSeverityName(diag.severity) << '['
       << lintCodeName(diag.code) << "]: " << diag.message;
    if (diag.instr != kNoLintInstr && diag.line == 0)
        os << " (instruction #" << diag.instr << ')';
    return os.str();
}

namespace {

/** Accumulates diagnostics and the summary counters. */
struct Linter
{
    const HaacProgram &prog;
    const LintOptions &opts;
    LintReport rep;

    uint32_t
    lineOf(uint32_t instr) const
    {
        if (opts.instrLines == nullptr || instr == kNoLintInstr ||
            instr >= opts.instrLines->size())
            return 0;
        return (*opts.instrLines)[instr];
    }

    void
    emit(LintCode code, LintSeverity sev, uint32_t instr, uint32_t addr,
         std::string msg)
    {
        if (sev != LintSeverity::Error && !opts.warnings)
            return;
        LintDiag d;
        d.code = code;
        d.severity = sev;
        d.instr = instr;
        d.addr = addr;
        d.line = lineOf(instr);
        d.message = std::move(msg);
        switch (sev) {
          case LintSeverity::Error:
            ++rep.errors;
            break;
          case LintSeverity::Warning:
            ++rep.warnings;
            break;
          case LintSeverity::Note:
            ++rep.notes;
            break;
        }
        rep.diags.push_back(std::move(d));
    }

    void
    error(LintCode code, uint32_t instr, uint32_t addr, std::string msg)
    {
        emit(code, LintSeverity::Error, instr, addr, std::move(msg));
    }

    void
    warn(LintCode code, uint32_t instr, uint32_t addr, std::string msg)
    {
        emit(code, LintSeverity::Warning, instr, addr, std::move(msg));
    }

    /** Producer instruction index of @p addr, or kNoLintInstr. */
    uint32_t
    producerOf(uint32_t addr) const
    {
        if (addr <= prog.numInputs || addr >= prog.numAddrs())
            return kNoLintInstr;
        return addr - prog.numInputs - 1;
    }

    bool
    isNopOutput(uint32_t addr) const
    {
        const uint32_t p = producerOf(addr);
        return p != kNoLintInstr && prog.instrs[p].op == HaacOp::Nop;
    }

    // --- structural checks (window-independent) ---------------------

    void
    checkInputSplit()
    {
        const uint64_t parties = uint64_t(prog.numGarblerInputs) +
                                 prog.numEvaluatorInputs;
        if (parties > prog.numInputs || prog.numInputs > parties + 1) {
            std::ostringstream os;
            os << "input split " << prog.numGarblerInputs
               << " garbler + " << prog.numEvaluatorInputs
               << " evaluator does not fit " << prog.numInputs
               << " input wires (at most one extra, the constant one)";
            error(LintCode::InputSplit, kNoLintInstr, kOorAddr,
                  os.str());
            return;
        }
        const bool slot = prog.numInputs == parties + 1;
        if (slot && prog.constOneAddr == kOorAddr) {
            error(LintCode::ConstOne, kNoLintInstr, kOorAddr,
                  "the input count implies a constant-one wire at w" +
                      std::to_string(prog.numInputs) +
                      " but constOneAddr is unset");
        } else if (!slot && prog.constOneAddr != kOorAddr) {
            error(LintCode::ConstOne, kNoLintInstr, prog.constOneAddr,
                  "constOneAddr is w" +
                      std::to_string(prog.constOneAddr) +
                      " but every input wire belongs to a party");
        } else if (slot && prog.constOneAddr != prog.numInputs) {
            error(LintCode::ConstOne, kNoLintInstr, prog.constOneAddr,
                  "the constant-one wire must be the last input (w" +
                      std::to_string(prog.numInputs) + "), not w" +
                      std::to_string(prog.constOneAddr));
        }
    }

    /** One operand slot; @p which is "a" or "b". */
    void
    checkOperand(uint32_t k, uint32_t addr, const char *which)
    {
        const uint32_t out = prog.outputAddrOf(size_t(k));
        if (addr == kOorAddr) {
            error(LintCode::SentinelOperand, k, addr,
                  std::string("operand ") + which +
                      " is the reserved OoRW sentinel w0 (the stream "
                      "generator owns that rewrite)");
            return;
        }
        if (addr >= out) {
            std::ostringstream os;
            os << "operand " << which << " reads w" << addr
               << " which is not defined before this instruction's "
                  "output w"
               << out
               << (addr == out ? " (self-reference)"
                               : " (forward reference breaks "
                                 "dependence acyclicity)");
            error(LintCode::UseBeforeDef, k, addr, os.str());
            return;
        }
        if (isNopOutput(addr)) {
            std::ostringstream os;
            os << "operand " << which << " reads w" << addr
               << ", the output of NOP instruction #"
               << producerOf(addr)
               << " — the machine never writes that wire";
            error(LintCode::NopOutputRead, k, addr, os.str());
        }
    }

    void
    checkInstructions()
    {
        std::unordered_map<uint32_t, uint32_t> tweakOwner;
        tweakOwner.reserve(prog.numAnd());
        for (uint32_t k = 0; k < prog.instrs.size(); ++k) {
            const HaacInstruction &ins = prog.instrs[k];
            const bool two = ins.op == HaacOp::And ||
                             ins.op == HaacOp::Xor;
            checkOperand(k, ins.a, "a");
            if (two) {
                checkOperand(k, ins.b, "b");
            } else if (ins.b != ins.a) {
                std::ostringstream os;
                os << opName(ins.op) << " carries b=w" << ins.b
                   << " instead of the canonical copy of a=w" << ins.a
                   << " (breaks listing round-trip equality)";
                warn(LintCode::NoncanonicalOperand, k, ins.b, os.str());
            }
            if (ins.op == HaacOp::And) {
                const auto it = tweakOwner.find(ins.tweak);
                if (it != tweakOwner.end()) {
                    std::ostringstream os;
                    os << "AND tweak " << ins.tweak
                       << " already used by instruction #" << it->second
                       << " — reuse collapses the correlation-robust "
                          "hash tweak domain (security error)";
                    error(LintCode::TweakReuse, k, kOorAddr, os.str());
                } else {
                    tweakOwner.emplace(ins.tweak, k);
                }
            } else if (ins.tweak != 0) {
                std::ostringstream os;
                os << opName(ins.op) << " carries tweak " << ins.tweak
                   << " but only AND instructions consume tweaks";
                warn(LintCode::StrayTweak, k, kOorAddr, os.str());
            }
        }
    }

    void
    checkOutputs()
    {
        for (size_t i = 0; i < prog.outputs.size(); ++i) {
            const uint32_t o = prog.outputs[i];
            if (o == kOorAddr || o >= prog.numAddrs()) {
                std::ostringstream os;
                os << "program output " << i << " is w" << o
                   << ", outside the defined address space [1, "
                   << prog.numAddrs() - 1 << "]";
                error(LintCode::UndefinedOutput, kNoLintInstr, o,
                      os.str());
                continue;
            }
            if (isNopOutput(o)) {
                std::ostringstream os;
                os << "program output " << i << " is w" << o
                   << ", the output of NOP instruction #"
                   << producerOf(o)
                   << " — the machine never writes that wire";
                error(LintCode::NopOutputRead, producerOf(o), o,
                      os.str());
            }
        }
    }

    // --- window-dependent checks (swwWires > 0) ---------------------

    void
    checkLiveness()
    {
        const uint32_t sww = opts.swwWires;
        // Per instruction: is its output ever read from below a
        // consumer's window base (an OoRW replay from DRAM)?
        std::vector<bool> offWindowRead(prog.instrs.size(), false);
        std::vector<bool> justified(prog.instrs.size(), false);

        for (uint32_t k = 0; k < prog.instrs.size(); ++k) {
            const HaacInstruction &ins = prog.instrs[k];
            const uint32_t out = prog.outputAddrOf(size_t(k));
            const uint32_t base = windowBase(out, sww);
            auto visit = [&](uint32_t addr, const char *which) {
                if (addr >= base)
                    return;
                const uint32_t p = producerOf(addr);
                if (p == kNoLintInstr)
                    return; // primary inputs are always resident
                offWindowRead[p] = true;
                if (!prog.instrs[p].live) {
                    std::ostringstream os;
                    os << "operand " << which << " reads w" << addr
                       << " from below the SWW window base w" << base
                       << " but its producer #" << p
                       << " is not marked live — the wire is never "
                          "spilled and the OoRW replay has nothing to "
                          "pop";
                    error(LintCode::DroppedLiveBit, k, addr, os.str());
                }
            };
            // Only valid backward references participate; structural
            // errors were already reported.
            if (ins.a != kOorAddr && ins.a < out)
                visit(ins.a, "a");
            if ((ins.op == HaacOp::And || ins.op == HaacOp::Xor) &&
                ins.b != kOorAddr && ins.b < out)
                visit(ins.b, "b");
        }

        for (size_t i = 0; i < prog.outputs.size(); ++i) {
            const uint32_t o = prog.outputs[i];
            const uint32_t p = producerOf(o);
            if (p == kNoLintInstr)
                continue; // input-addressed outputs decode directly
            justified[p] = true;
            if (prog.instrs[p].op != HaacOp::Nop &&
                !prog.instrs[p].live) {
                std::ostringstream os;
                os << "program output " << i << " (w" << o
                   << ") is produced by instruction #" << p
                   << " which is not marked live — the decode reads "
                      "spilled labels from DRAM";
                error(LintCode::OutputNotLive, p, o, os.str());
            }
        }

        if (opts.shards != nullptr) {
            // Exports must stay live; do not count them as waste.
            for (const auto &exp : opts.shards->exports)
                for (uint32_t addr : exp) {
                    const uint32_t p = producerOf(addr);
                    if (p != kNoLintInstr)
                        justified[p] = true;
                }
        }

        uint32_t wasted = 0;
        for (uint32_t k = 0; k < prog.instrs.size(); ++k) {
            if (!prog.instrs[k].live || offWindowRead[k] ||
                justified[k])
                continue;
            ++wasted;
            rep.wasteBytes += kLabelBytes;
            std::ostringstream os;
            os << "live bit on w" << prog.outputAddrOf(size_t(k))
               << " buys nothing: no instruction reads it off-window "
                  "and it is not a program output — "
               << kLabelBytes << " bytes of avoidable DRAM traffic";
            warn(LintCode::LivenessWaste, k, prog.outputAddrOf(size_t(k)),
                 os.str());
        }
        if (wasted > 0 && opts.warnings) {
            std::ostringstream os;
            os << wasted << " wastefully live wire"
               << (wasted == 1 ? "" : "s") << " = " << rep.wasteBytes
               << " bytes of avoidable DRAM write traffic at "
               << opts.swwWires << "-wire SWW";
            emit(LintCode::LivenessWaste, LintSeverity::Note,
                 kNoLintInstr, kOorAddr, os.str());
        }
    }

    // --- queue-stream consistency -----------------------------------

    void
    checkStreams()
    {
        const StreamSet &set = *opts.streams;
        const size_t n = prog.instrs.size();
        if (set.geOf.size() != n) {
            std::ostringstream os;
            os << "StreamSet::geOf has " << set.geOf.size()
               << " entries for " << n << " instructions";
            error(LintCode::StreamCoverage, kNoLintInstr, kOorAddr,
                  os.str());
            return;
        }
        std::vector<uint32_t> seen(n, 0);
        for (size_t g = 0; g < set.ge.size(); ++g) {
            const GeStreams &ge = set.ge[g];
            if (ge.instrs.size() != ge.instrIdx.size()) {
                std::ostringstream os;
                os << "ge" << g << " carries " << ge.instrs.size()
                   << " local instructions for " << ge.instrIdx.size()
                   << " stream slots";
                error(LintCode::StreamCoverage, kNoLintInstr, kOorAddr,
                      os.str());
                continue;
            }
            std::vector<uint32_t> expectOor;
            uint64_t tables = 0;
            for (size_t pos = 0; pos < ge.instrIdx.size(); ++pos) {
                const uint32_t idx = ge.instrIdx[pos];
                if (idx >= n) {
                    std::ostringstream os;
                    os << "ge" << g << " stream slot " << pos
                       << " names instruction #" << idx
                       << ", past the program end";
                    error(LintCode::StreamCoverage, kNoLintInstr,
                          kOorAddr, os.str());
                    continue;
                }
                ++seen[idx];
                if (set.geOf[idx] != g) {
                    std::ostringstream os;
                    os << "instruction #" << idx << " streams on ge"
                       << g << " but geOf maps it to ge"
                       << unsigned(set.geOf[idx]);
                    error(LintCode::StreamCoverage, idx, kOorAddr,
                          os.str());
                }
                const HaacInstruction &orig = prog.instrs[idx];
                HaacInstruction expect = orig;
                if (opts.swwWires > 0) {
                    const uint32_t base = windowBase(
                        prog.outputAddrOf(idx), opts.swwWires);
                    if (expect.a < base) {
                        expectOor.push_back(expect.a);
                        expect.a = kOorAddr;
                    }
                    if (expect.op != HaacOp::Not && expect.b < base) {
                        expectOor.push_back(expect.b);
                        expect.b = kOorAddr;
                    }
                    if (ge.instrs[pos] != expect) {
                        std::ostringstream os;
                        os << "ge" << g << " local copy of #" << idx
                           << " is '" << opName(ge.instrs[pos].op)
                           << " w" << ge.instrs[pos].a << ", w"
                           << ge.instrs[pos].b
                           << "' but the window discipline requires '"
                           << opName(expect.op) << " w" << expect.a
                           << ", w" << expect.b << "'";
                        error(LintCode::StreamOorMismatch, idx,
                              kOorAddr, os.str());
                    }
                }
                if (orig.op == HaacOp::And)
                    ++tables;
            }
            if (opts.swwWires > 0 && expectOor != ge.oorAddrs) {
                std::ostringstream os;
                os << "ge" << g << " OoRW pop stream has "
                   << ge.oorAddrs.size() << " entries; the window "
                   << "discipline derives " << expectOor.size();
                size_t i = 0;
                const size_t lim =
                    std::min(expectOor.size(), ge.oorAddrs.size());
                while (i < lim && expectOor[i] == ge.oorAddrs[i])
                    ++i;
                if (i < lim)
                    os << " (first divergence at pop " << i
                       << ": stream has w" << ge.oorAddrs[i]
                       << ", expected w" << expectOor[i] << ")";
                error(LintCode::StreamOorMismatch, kNoLintInstr,
                      kOorAddr, os.str());
            }
            if (tables != ge.tableCount) {
                std::ostringstream os;
                os << "ge" << g << " declares " << ge.tableCount
                   << " table-queue entries but streams " << tables
                   << " AND instructions";
                error(LintCode::StreamTableCount, kNoLintInstr,
                      kOorAddr, os.str());
            }
        }
        for (size_t idx = 0; idx < n; ++idx) {
            if (seen[idx] == 1)
                continue;
            std::ostringstream os;
            os << "instruction #" << idx << " appears " << seen[idx]
               << " times across the GE streams (must be exactly once)";
            error(LintCode::StreamCoverage, uint32_t(idx), kOorAddr,
                  os.str());
        }
    }

    // --- shard-manifest consistency ---------------------------------

    void
    checkShards()
    {
        const ShardManifest &man = *opts.shards;
        const size_t n = prog.instrs.size();
        const size_t m = man.imports.size();
        if (man.shardOfInstr.size() != n || man.exports.size() != m) {
            std::ostringstream os;
            os << "shard manifest shape mismatch: " << m
               << " import lists, " << man.exports.size()
               << " export lists, " << man.shardOfInstr.size()
               << " instruction owners for " << n << " instructions";
            error(LintCode::ShardManifestBad, kNoLintInstr, kOorAddr,
                  os.str());
            return;
        }
        auto contains = [](const std::vector<uint32_t> &v,
                           uint32_t addr) {
            return std::binary_search(v.begin(), v.end(), addr);
        };

        // Exports must be owned by the exporting shard and stay live.
        for (size_t s = 0; s < m; ++s) {
            for (uint32_t addr : man.exports[s]) {
                const uint32_t p = producerOf(addr);
                if (p == kNoLintInstr) {
                    std::ostringstream os;
                    os << "shard " << s << " exports w" << addr
                       << ", which no instruction produces";
                    error(LintCode::ShardManifestBad, kNoLintInstr,
                          addr, os.str());
                    continue;
                }
                if (man.shardOfInstr[p] != s) {
                    std::ostringstream os;
                    os << "shard " << s << " exports w" << addr
                       << " but its producer #" << p
                       << " belongs to shard "
                       << unsigned(man.shardOfInstr[p]);
                    error(LintCode::ShardManifestBad, p, addr,
                          os.str());
                    continue;
                }
                if (!prog.instrs[p].live) {
                    std::ostringstream os;
                    os << "shard " << s << " exports w" << addr
                       << " but its producer #" << p
                       << " is not marked live — the importing shard "
                          "fetches it from DRAM";
                    error(LintCode::ShardExportDead, p, addr,
                          os.str());
                }
            }
        }

        // Every cross-shard read must be manifested on both sides.
        std::vector<std::vector<uint32_t>> importUsed(m), exportUsed(m);
        for (uint32_t k = 0; k < n; ++k) {
            const HaacInstruction &ins = prog.instrs[k];
            const uint8_t s = man.shardOfInstr[k];
            const uint32_t out = prog.outputAddrOf(size_t(k));
            auto visit = [&](uint32_t addr, const char *which) {
                if (addr == kOorAddr || addr >= out)
                    return; // structural errors already reported
                const uint32_t p = producerOf(addr);
                if (p == kNoLintInstr)
                    return; // inputs are resident on every shard
                const uint8_t ps = man.shardOfInstr[p];
                if (ps == s)
                    return;
                if (!contains(man.imports[s], addr)) {
                    std::ostringstream os;
                    os << "operand " << which << " of #" << k
                       << " reads w" << addr << " from shard "
                       << unsigned(ps) << " but shard " << unsigned(s)
                       << " does not list it as an import";
                    error(LintCode::ShardImportMissing, k, addr,
                          os.str());
                } else {
                    importUsed[s].push_back(addr);
                }
                if (!contains(man.exports[ps], addr)) {
                    std::ostringstream os;
                    os << "w" << addr << " crosses from shard "
                       << unsigned(ps) << " to shard " << unsigned(s)
                       << " but shard " << unsigned(ps)
                       << " does not list it as an export";
                    error(LintCode::ShardExportMissing, k, addr,
                          os.str());
                } else {
                    exportUsed[ps].push_back(addr);
                }
            };
            visit(ins.a, "a");
            if (ins.op == HaacOp::And || ins.op == HaacOp::Xor)
                visit(ins.b, "b");
        }

        for (size_t s = 0; s < m; ++s) {
            auto uniq = [](std::vector<uint32_t> &v) {
                std::sort(v.begin(), v.end());
                v.erase(std::unique(v.begin(), v.end()), v.end());
            };
            uniq(importUsed[s]);
            uniq(exportUsed[s]);
            for (uint32_t addr : man.imports[s]) {
                if (contains(importUsed[s], addr))
                    continue;
                std::ostringstream os;
                os << "shard " << s << " imports w" << addr
                   << " but no instruction of shard " << s
                   << " reads it across the boundary";
                warn(LintCode::ShardImportUnused, kNoLintInstr, addr,
                     os.str());
            }
            for (uint32_t addr : man.exports[s]) {
                if (contains(exportUsed[s], addr))
                    continue;
                std::ostringstream os;
                os << "shard " << s << " exports w" << addr
                   << " but no other shard imports it";
                warn(LintCode::ShardExportUnused, kNoLintInstr, addr,
                     os.str());
            }
        }
    }
};

} // namespace

LintReport
verifyProgram(const HaacProgram &prog, const LintOptions &opts)
{
    Linter lint{prog, opts, LintReport{}};
    lint.checkInputSplit();
    lint.checkInstructions();
    lint.checkOutputs();
    if (opts.swwWires > 0)
        lint.checkLiveness();
    if (opts.streams != nullptr)
        lint.checkStreams();
    if (opts.shards != nullptr)
        lint.checkShards();
    return std::move(lint.rep);
}

} // namespace haac
