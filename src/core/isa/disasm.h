/**
 * @file
 * HAAC disassembler: textual program listings.
 *
 * The full listing (max_instrs == 0) is the *canonical* HAAC assembly
 * form: every line is either a directive (`.inputs`, `.const_one`,
 * `.outputs`), an instruction, or a `;` comment, and the output parses
 * back bit-exactly through core/isa/asm.h — `parseAsm(toAsm(p)) == p`
 * for every valid program. Truncated listings (max_instrs > 0) are for
 * human debugging only and elide instructions behind a comment.
 */
#ifndef HAAC_CORE_ISA_DISASM_H
#define HAAC_CORE_ISA_DISASM_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/isa/program.h"

namespace haac {

/** "AND" / "XOR" / "NOT" / "NOP". */
const char *opName(HaacOp op);

/**
 * One instruction as text, e.g. "AND w12, w7 -> w19 [live] (tweak 4)".
 * Always spells operands as `w<addr>` (no program context); the
 * listing produced by disassemble() uses symbolic names instead.
 *
 * @param out_addr the instruction's implicit output address; pass
 *        kOorAddr to omit the arrow.
 */
std::string toString(const HaacInstruction &ins,
                     uint32_t out_addr = kOorAddr);

/**
 * Symbolic spelling of a wire address in @p prog: `g<k>` / `e<k>` for
 * the k-th garbler/evaluator input (0-based), `one` for the
 * constant-one wire, `oorw` for the reserved sentinel, and `w<addr>`
 * for everything else. The assembler resolves all of these, so
 * listings built from this spelling round-trip through parseAsm().
 */
std::string wireName(const HaacProgram &prog, uint32_t addr);

/**
 * Disassemble a whole program.
 *
 * @param max_instrs cap on listed instructions (0 = all; required for
 *        a parseable listing).
 * @param ge_of optional per-instruction GE assignment (StreamSet::geOf)
 *        appended as an `@geN` annotation to each instruction.
 */
void disassemble(const HaacProgram &prog, std::ostream &os,
                 size_t max_instrs = 0,
                 const std::vector<uint8_t> *ge_of = nullptr);

/** Canonical assembly text: disassemble(prog, os, 0) into a string. */
std::string toAsm(const HaacProgram &prog);

} // namespace haac

#endif // HAAC_CORE_ISA_DISASM_H
