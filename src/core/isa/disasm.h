/**
 * @file
 * HAAC disassembler: human-readable program listings for debugging
 * compiler passes and stream generation.
 */
#ifndef HAAC_CORE_ISA_DISASM_H
#define HAAC_CORE_ISA_DISASM_H

#include <iosfwd>
#include <string>

#include "core/isa/program.h"

namespace haac {

/** "AND" / "XOR" / "NOT" / "NOP". */
const char *opName(HaacOp op);

/**
 * One instruction as text, e.g. "AND w12, w7 -> w19 [live] (tweak 4)".
 *
 * @param out_addr the instruction's implicit output address; pass
 *        kOorAddr to omit the arrow.
 */
std::string toString(const HaacInstruction &ins,
                     uint32_t out_addr = kOorAddr);

/**
 * Disassemble a whole program.
 *
 * @param max_instrs cap on listed instructions (0 = all).
 */
void disassemble(const HaacProgram &prog, std::ostream &os,
                 size_t max_instrs = 0);

} // namespace haac

#endif // HAAC_CORE_ISA_DISASM_H
