#include "core/isa/conformance.h"

#include <algorithm>
#include <sstream>

#include "core/compiler/passes.h"
#include "core/compiler/streams.h"
#include "core/isa/asm.h"
#include "core/isa/disasm.h"
#include "core/isa/verify.h"
#include "core/sim/engine.h"
#include "core/sim/functional.h"
#include "crypto/prg.h"
#include "shard/coordinator.h"

namespace haac {

namespace {

/**
 * Addresses whose value a later instruction may read. NOP outputs are
 * excluded on purpose: the plaintext oracle materializes them as false
 * while the functional machine never writes the wire at all, so a
 * program that reads one is ill-formed rather than a conformance
 * disagreement (the assembler's operand rule permits it only because
 * the textual form cannot know an operand's producer opcode).
 */
uint32_t
pickOperand(Prg &rng, const std::vector<uint32_t> &readable,
            uint32_t out, uint32_t sww_wires, uint32_t far_pct)
{
    const uint32_t base = windowBase(out, sww_wires);
    if (far_pct > 0 && base > 1 && rng.nextRange(100) < far_pct) {
        // readable is ascending; everything strictly below the window
        // base must come back through the OoRW queue.
        const auto it = std::lower_bound(readable.begin(),
                                         readable.end(), base);
        const size_t far = size_t(it - readable.begin());
        if (far > 0)
            return readable[rng.nextRange(far)];
    }
    return readable[rng.nextRange(readable.size())];
}

std::string
bitString(const std::vector<bool> &bits)
{
    std::string s;
    s.reserve(bits.size());
    for (bool b : bits)
        s.push_back(b ? '1' : '0');
    return s;
}

const char *
roleName(Role role)
{
    return role == Role::Garbler ? "garbler" : "evaluator";
}

} // namespace

HaacProgram
generateProgram(uint64_t seed, const GenOptions &opts,
                uint32_t sww_wires)
{
    Prg rng(splitmix64(seed ^ 0x4841414347454eull)); // "HAACGEN"
    HaacProgram prog;

    const uint32_t min_in = std::max<uint32_t>(2, opts.minInputs);
    const uint32_t max_in = std::max(min_in, opts.maxInputs);
    const uint32_t parties =
        min_in + uint32_t(rng.nextRange(max_in - min_in + 1));
    prog.numGarblerInputs = 1 + uint32_t(rng.nextRange(parties - 1));
    prog.numEvaluatorInputs = parties - prog.numGarblerInputs;

    const bool const_one = opts.allowConstOne && rng.nextBit();
    prog.numInputs = parties + (const_one ? 1 : 0);
    prog.constOneAddr = const_one ? prog.numInputs : kOorAddr;

    const uint32_t min_n = std::max<uint32_t>(1, opts.minInstrs);
    const uint32_t max_n = std::max(min_n, opts.maxInstrs);
    const uint32_t n =
        min_n + uint32_t(rng.nextRange(max_n - min_n + 1));

    std::vector<uint32_t> readable;
    readable.reserve(prog.numInputs + n);
    for (uint32_t addr = 1; addr <= prog.numInputs; ++addr)
        readable.push_back(addr);

    uint32_t and_count = 0;
    prog.instrs.reserve(n);
    for (uint32_t k = 0; k < n; ++k) {
        const uint32_t out = prog.outputAddrOf(k);
        HaacInstruction ins;

        const uint64_t roll = rng.nextRange(100);
        if (roll < 40)
            ins.op = HaacOp::Xor;
        else if (roll < 70)
            ins.op = HaacOp::And;
        else if (roll < 90 || !opts.allowNop)
            ins.op = HaacOp::Not;
        else
            ins.op = HaacOp::Nop;

        ins.a = pickOperand(rng, readable, out, sww_wires,
                            opts.farOperandPct);
        if (ins.op == HaacOp::And || ins.op == HaacOp::Xor)
            ins.b = pickOperand(rng, readable, out, sww_wires,
                                opts.farOperandPct);
        else
            ins.b = ins.a; // canonical form for NOT/NOP

        ins.live = false;
        ins.tweak = ins.op == HaacOp::And ? and_count++ : 0;
        prog.instrs.push_back(ins);
        if (ins.op != HaacOp::Nop)
            readable.push_back(out);
    }

    // Program outputs: mostly recent values (a real circuit's shape),
    // occasionally anything readable — including primary inputs, which
    // exercises the functional machine's input-addressed output path.
    const size_t n_out = 1 + rng.nextRange(std::min<size_t>(
                                 8, readable.size()));
    const size_t recent = std::min<size_t>(32, readable.size());
    for (size_t i = 0; i < n_out; ++i) {
        if (rng.nextRange(100) < 80) {
            const size_t j = rng.nextRange(recent);
            prog.outputs.push_back(readable[readable.size() - 1 - j]);
        } else {
            prog.outputs.push_back(
                readable[rng.nextRange(readable.size())]);
        }
    }

    // Liveness: ESW-exact, everything live (no-ESW), or ESW plus
    // random extra spills (harmless supersets must also conform).
    const uint64_t live_roll = rng.nextRange(3);
    if (live_roll == 0) {
        applyEsw(prog, sww_wires);
    } else if (live_roll == 1) {
        clearEsw(prog);
    } else {
        applyEsw(prog, sww_wires);
        for (auto &ins : prog.instrs)
            if (rng.nextRange(8) == 0)
                ins.live = true;
    }
    return prog;
}

HaacConfig
conformanceConfig(uint64_t seed)
{
    Prg rng(splitmix64(seed ^ 0x484141434347ull)); // "HAACCG"
    HaacConfig cfg;

    static const uint32_t kGes[] = {1, 2, 4};
    static const uint32_t kSwwWires[] = {64, 128, 256};
    cfg.numGes = kGes[rng.nextRange(3)];
    cfg.swwBytes = size_t(kSwwWires[rng.nextRange(3)]) * kLabelBytes;
    cfg.banksPerGe = rng.nextBit() ? 4 : 2;
    cfg.role = rng.nextBit() ? Role::Garbler : Role::Evaluator;
    cfg.forwarding = rng.nextBit();
    cfg.queueSramBytes = rng.nextBit() ? 8192 : 2048;
    cfg.writeBufferBytes = rng.nextBit() ? 16 * 1024 : 512;
    cfg.dramLatency = rng.nextBit() ? 100 : 20;
    return cfg;
}

ConformanceResult
checkConformance(const HaacProgram &prog, const HaacConfig &cfg,
                 const std::vector<bool> &garbler,
                 const std::vector<bool> &evaluator)
{
    ConformanceResult res;

    const std::string bad = prog.check();
    if (!bad.empty()) {
        res.error = "program fails check(): " + bad;
        return res;
    }

    res.expected = executePlain(prog, garbler, evaluator);

    const StreamSet streams = buildStreams(prog, cfg);

    // Static verification before any differential run: a program the
    // verifier rejects (dropped live bit, tweak reuse, stream
    // corruption, ...) must be refused here with the diagnostic code,
    // not discovered as a lucky divergence downstream.
    LintOptions lint;
    lint.swwWires = cfg.swwWires();
    lint.warnings = false;
    lint.streams = &streams;
    const LintReport lrep = verifyProgram(prog, lint);
    if (!lrep.clean()) {
        for (const LintDiag &d : lrep.diags) {
            if (d.severity != LintSeverity::Error)
                continue;
            res.error = "verifier: error[" +
                        std::string(lintCodeName(d.code)) +
                        "]: " + d.message;
            break;
        }
        return res;
    }

    const FunctionalResult fr =
        runFunctional(prog, streams, cfg, garbler, evaluator);
    if (!fr.ok) {
        res.error = "functional machine: " + fr.error;
        return res;
    }
    res.functionalOutputs = fr.outputs;
    res.oorPops = fr.oorPops;

    if (fr.outputs.size() != res.expected.size()) {
        res.error = "functional machine returned " +
                    std::to_string(fr.outputs.size()) +
                    " outputs, oracle has " +
                    std::to_string(res.expected.size());
        return res;
    }
    for (size_t i = 0; i < res.expected.size(); ++i) {
        if (fr.outputs[i] != res.expected[i]) {
            std::ostringstream os;
            os << "output " << i << " (wire w" << prog.outputs[i]
               << "): functional=" << fr.outputs[i]
               << " oracle=" << res.expected[i];
            res.error = os.str();
            return res;
        }
    }

    // Timing model: the replay must retire exactly the program, in
    // every mode, and time must pass whenever work exists.
    static const SimMode kModes[] = {SimMode::Combined,
                                     SimMode::ComputeOnly,
                                     SimMode::TrafficOnly};
    static const char *kModeNames[] = {"Combined", "ComputeOnly",
                                       "TrafficOnly"};
    for (int m = 0; m < 3; ++m) {
        const SimStats st = runSimulation(prog, cfg, streams, kModes[m]);
        if (st.instructions != prog.instrs.size()) {
            res.error = std::string("timing model (") + kModeNames[m] +
                        ") issued " +
                        std::to_string(st.instructions) + " of " +
                        std::to_string(prog.instrs.size()) +
                        " instructions";
            return res;
        }
        if (!prog.instrs.empty() && st.cycles == 0) {
            res.error = std::string("timing model (") + kModeNames[m] +
                        ") reported zero cycles";
            return res;
        }
        if (kModes[m] == SimMode::Combined)
            res.timingCycles = st.cycles;
    }

    res.ok = true;
    return res;
}

ShardConformanceResult
checkShardConformance(const HaacProgram &prog, const HaacConfig &cfg,
                      uint32_t shards,
                      const std::vector<bool> &garbler,
                      const std::vector<bool> &evaluator)
{
    ShardConformanceResult res;

    const std::string bad = prog.check();
    if (!bad.empty()) {
        res.error = "program fails check(): " + bad;
        return res;
    }

    res.expected = executePlain(prog, garbler, evaluator);

    // The coordinator clamps shards to [1, numGes]; a config drawn
    // for the single-core sweep may carry fewer GEs than requested
    // shards, and a silently-clamped 1-shard run would test nothing.
    HaacConfig scfg = cfg;
    scfg.numGes = std::max(scfg.numGes, shards);

    shard::ShardOptions sopts;
    sopts.shards = shards;
    // Fuzz programs carry far deeper cross-shard dependency chains
    // than compiled circuits, and the fixed point propagates one hop
    // per round — the serving default of 8 rounds is not enough. The
    // wire graph is acyclic, so instrs + 2 rounds always converge.
    sopts.maxRounds =
        std::max<uint32_t>(sopts.maxRounds,
                           uint32_t(prog.instrs.size()) + 2);

    shard::ShardRunResult r;
    try {
        r = shard::runSharded(prog, scfg, SimMode::Combined, sopts,
                              garbler, evaluator,
                              /*want_values=*/true);
    } catch (const std::exception &ex) {
        res.error = std::string("sharded run threw: ") + ex.what();
        return res;
    }

    res.shards = r.shards;
    res.rounds = r.rounds;
    res.crossWires = r.crossWires;
    res.cycles = r.stats.cycles;

    if (r.shards != shards) {
        res.error = "coordinator ran " + std::to_string(r.shards) +
                    " of " + std::to_string(shards) +
                    " requested shards";
        return res;
    }
    if (!r.converged) {
        res.error = "cross-shard schedule did not converge in " +
                    std::to_string(r.rounds) + " rounds";
        return res;
    }

    uint64_t retired = 0;
    for (uint64_t n : r.shardInstructions)
        retired += n;
    if (retired != prog.instrs.size()) {
        res.error = "shards retired " + std::to_string(retired) +
                    " of " + std::to_string(prog.instrs.size()) +
                    " instructions";
        return res;
    }
    if (!prog.instrs.empty() && r.stats.cycles == 0) {
        res.error = "sharded timing reported zero cycles";
        return res;
    }

    if (!r.hasOutputs) {
        res.error = "sharded run produced no output values";
        return res;
    }
    if (r.outputs.size() != res.expected.size()) {
        res.error = "sharded run returned " +
                    std::to_string(r.outputs.size()) +
                    " outputs, oracle has " +
                    std::to_string(res.expected.size());
        return res;
    }
    for (size_t i = 0; i < res.expected.size(); ++i) {
        if (r.outputs[i] != res.expected[i]) {
            std::ostringstream os;
            os << "output " << i << " (wire w" << prog.outputs[i]
               << "): sharded=" << r.outputs[i]
               << " oracle=" << res.expected[i];
            res.error = os.str();
            return res;
        }
    }

    res.ok = true;
    return res;
}

FuzzSummary
fuzzConformance(uint64_t seed, uint32_t count, const GenOptions &opts)
{
    constexpr size_t kMaxStoredFailures = 10;
    FuzzSummary sum;

    for (uint32_t i = 0; i < count; ++i) {
        const uint64_t pseed = splitmix64(seed + 0x9e3779b97f4a7c15ull * (i + 1));
        const HaacConfig cfg = conformanceConfig(pseed);
        const HaacProgram prog =
            generateProgram(pseed, opts, cfg.swwWires());

        Prg in(splitmix64(pseed ^ 0x484141434954ull)); // "HAACIT"
        std::vector<bool> g(prog.numGarblerInputs);
        std::vector<bool> e(prog.numEvaluatorInputs);
        for (size_t j = 0; j < g.size(); ++j)
            g[j] = in.nextBit();
        for (size_t j = 0; j < e.size(); ++j)
            e[j] = in.nextBit();

        const ConformanceResult r =
            checkConformance(prog, cfg, g, e);
        ++sum.programs;
        sum.totalInstructions += prog.instrs.size();
        sum.totalOorPops += r.oorPops;
        if (r.ok)
            continue;

        if (sum.failures.size() < kMaxStoredFailures) {
            FuzzFailure f;
            f.programSeed = pseed;
            f.error = r.error;

            std::ostringstream os;
            os << "; conformance failure: " << r.error << "\n";
            os << "; program seed: " << pseed << "\n";
            os << "; config: ges=" << cfg.numGes
               << " sww_wires=" << cfg.swwWires()
               << " banks_per_ge=" << cfg.banksPerGe
               << " role=" << roleName(cfg.role)
               << " forwarding=" << (cfg.forwarding ? 1 : 0)
               << " queue_sram=" << cfg.queueSramBytes
               << " write_buffer=" << cfg.writeBufferBytes
               << " dram_latency=" << cfg.dramLatency << "\n";
            os << toAsm(prog);
            os << ".test garbler=" << bitString(g)
               << " evaluator=" << bitString(e)
               << " expect=" << bitString(r.expected) << "\n";
            f.haacDump = os.str();
            sum.failures.push_back(std::move(f));
        }
    }
    return sum;
}

ShardFuzzSummary
fuzzShardConformance(uint64_t seed, uint32_t count, uint32_t shards,
                     const GenOptions &opts)
{
    constexpr size_t kMaxStoredFailures = 10;
    ShardFuzzSummary sum;

    for (uint32_t i = 0; i < count; ++i) {
        // Same derivation as fuzzConformance: program i here is
        // program i there, so a divergence that only shows up in this
        // sweep isolates the sharded path.
        const uint64_t pseed = splitmix64(seed + 0x9e3779b97f4a7c15ull * (i + 1));
        const HaacConfig cfg = conformanceConfig(pseed);
        const HaacProgram prog =
            generateProgram(pseed, opts, cfg.swwWires());

        Prg in(splitmix64(pseed ^ 0x484141434954ull)); // "HAACIT"
        std::vector<bool> g(prog.numGarblerInputs);
        std::vector<bool> e(prog.numEvaluatorInputs);
        for (size_t j = 0; j < g.size(); ++j)
            g[j] = in.nextBit();
        for (size_t j = 0; j < e.size(); ++j)
            e[j] = in.nextBit();

        const ShardConformanceResult r =
            checkShardConformance(prog, cfg, shards, g, e);
        ++sum.programs;
        sum.totalInstructions += prog.instrs.size();
        sum.totalCrossWires += r.crossWires;
        if (r.ok)
            continue;

        if (sum.failures.size() < kMaxStoredFailures) {
            FuzzFailure f;
            f.programSeed = pseed;
            f.error = r.error;

            std::ostringstream os;
            os << "; shard conformance failure: " << r.error << "\n";
            os << "; program seed: " << pseed << "\n";
            os << "; shards: " << shards << "\n";
            os << "; config: ges=" << std::max(cfg.numGes, shards)
               << " sww_wires=" << cfg.swwWires()
               << " banks_per_ge=" << cfg.banksPerGe
               << " role=" << roleName(cfg.role)
               << " forwarding=" << (cfg.forwarding ? 1 : 0)
               << " queue_sram=" << cfg.queueSramBytes
               << " write_buffer=" << cfg.writeBufferBytes
               << " dram_latency=" << cfg.dramLatency << "\n";
            os << toAsm(prog);
            os << ".test garbler=" << bitString(g)
               << " evaluator=" << bitString(e)
               << " expect=" << bitString(r.expected) << "\n";
            f.haacDump = os.str();
            sum.failures.push_back(std::move(f));
        }
    }
    return sum;
}

AsmCaseResult
runAsmCase(const std::string &path, const HaacConfig &cfg)
{
    AsmCaseResult res;

    const AsmResult parsed = parseAsmFile(path);
    if (!parsed.ok) {
        res.error = path + ": " + parsed.error;
        return res;
    }
    if (parsed.tests.empty()) {
        res.error = path + ": no .test vectors (expectation files "
                           "must expect something)";
        return res;
    }

    // Full static verification at the grader's window geometry, with
    // source lines mapped in. Error findings fail the case before a
    // single vector runs.
    LintOptions lint;
    lint.swwWires = cfg.swwWires();
    lint.instrLines = &parsed.instrLines;
    const LintReport lrep = verifyProgram(parsed.prog, lint);
    if (!lrep.clean()) {
        for (const LintDiag &d : lrep.diags) {
            if (d.severity != LintSeverity::Error)
                continue;
            res.error = formatDiag(d, path);
            break;
        }
        return res;
    }

    for (const AsmTestVector &t : parsed.tests) {
        const std::vector<bool> oracle =
            executePlain(parsed.prog, t.garbler, t.evaluator);
        if (oracle != t.expect) {
            res.error = path + ": line " + std::to_string(t.line) +
                        ": oracle produced " + bitString(oracle) +
                        ", file expects " + bitString(t.expect);
            return res;
        }
        const ConformanceResult r =
            checkConformance(parsed.prog, cfg, t.garbler, t.evaluator);
        if (!r.ok) {
            res.error = path + ": line " + std::to_string(t.line) +
                        ": " + r.error;
            return res;
        }
        ++res.vectorsRun;
    }
    res.ok = true;
    return res;
}

} // namespace haac
