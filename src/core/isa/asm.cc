#include "core/isa/asm.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "core/isa/disasm.h"

namespace haac {

namespace {

/** Addresses above this would overflow numAddrs() arithmetic. */
constexpr uint32_t kMaxAddr = 1u << 28;

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string
upper(std::string s)
{
    for (char &c : s)
        c = char(std::toupper(static_cast<unsigned char>(c)));
    return s;
}

/** Cursor over one source line (comment already stripped). */
struct Scanner
{
    const std::string &s;
    size_t pos = 0;

    void
    skipWs()
    {
        while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t' ||
                                  s[pos] == '\r'))
            ++pos;
    }

    bool
    atEnd()
    {
        skipWs();
        return pos >= s.size();
    }

    bool
    lit(char c)
    {
        skipWs();
        if (pos < s.size() && s[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    litArrow()
    {
        skipWs();
        if (pos + 1 < s.size() && s[pos] == '-' && s[pos + 1] == '>') {
            pos += 2;
            return true;
        }
        return false;
    }

    /** [A-Za-z_][A-Za-z0-9_]* ; empty string when next is not one. */
    std::string
    ident()
    {
        skipWs();
        if (pos >= s.size() || !isIdentStart(s[pos]))
            return "";
        const size_t start = pos;
        while (pos < s.size() && isIdentChar(s[pos]))
            ++pos;
        return s.substr(start, pos - start);
    }

    /** Decimal literal with overflow detection. */
    bool
    number(uint64_t &out, bool &overflow)
    {
        skipWs();
        overflow = false;
        if (pos >= s.size() ||
            !std::isdigit(static_cast<unsigned char>(s[pos])))
            return false;
        uint64_t v = 0;
        while (pos < s.size() &&
               std::isdigit(static_cast<unsigned char>(s[pos]))) {
            const uint64_t d = uint64_t(s[pos] - '0');
            if (v > (~uint64_t(0) - d) / 10)
                overflow = true;
            else
                v = v * 10 + d;
            ++pos;
        }
        out = v;
        return true;
    }

    std::string
    rest()
    {
        skipWs();
        return s.substr(pos);
    }
};

/** Is @p tok of the form w<digits>? (The wire-literal spelling.) */
bool
isWireToken(const std::string &tok)
{
    if (tok.size() < 2 || (tok[0] != 'w' && tok[0] != 'W'))
        return false;
    for (size_t i = 1; i < tok.size(); ++i)
        if (!std::isdigit(static_cast<unsigned char>(tok[i])))
            return false;
    return true;
}

bool
isOpcodeToken(const std::string &tok)
{
    const std::string u = upper(tok);
    return u == "AND" || u == "XOR" || u == "NOT" || u == "NOP";
}

struct Parser
{
    AsmResult res;
    uint32_t line = 0;

    bool sawInputs = false;
    bool sawOutputs = false;
    uint32_t outputsLine = 0;
    std::vector<uint32_t> outputLines; // parallel to prog.outputs
    std::unordered_map<std::string, uint32_t> labels;
    std::vector<std::pair<std::string, uint32_t>> pendingLabels;
    uint32_t andCount = 0;
    bool anyGeHint = false;

    bool
    fail(const std::string &msg, uint32_t at_line)
    {
        res.ok = false;
        res.errorLine = at_line;
        res.error = "line " + std::to_string(at_line) + ": " + msg;
        return false;
    }

    bool fail(const std::string &msg) { return fail(msg, line); }

    /** Next output address (the implicit rule). */
    uint32_t
    nextOut() const
    {
        return res.prog.numInputs + 1 +
               uint32_t(res.prog.instrs.size());
    }

    bool
    wireNumber(Scanner &sc, const std::string &tok, uint32_t &addr)
    {
        uint64_t v = 0;
        bool overflow = false;
        Scanner digits{tok, 1};
        digits.number(v, overflow);
        (void)sc;
        if (overflow || v > kMaxAddr)
            return fail("wire address out of range: " + tok);
        addr = uint32_t(v);
        return true;
    }

    /**
     * Builtin input names the disassembler emits: g<k> / e<k> (0-based
     * party input) and `one`. User labels shadow these (resolved first
     * in operand()); the disassembler defines no labels, so its
     * listings always resolve to the builtin.
     */
    bool
    builtinName(const std::string &tok, uint32_t &addr) const
    {
        if (!sawInputs)
            return false;
        if (tok == "one") {
            if (res.prog.constOneAddr == kOorAddr)
                return false;
            addr = res.prog.constOneAddr;
            return true;
        }
        if (tok.size() < 2 || (tok[0] != 'g' && tok[0] != 'e'))
            return false;
        uint64_t v = 0;
        bool overflow = false;
        Scanner digits{tok, 1};
        if (!digits.number(v, overflow) || !digits.atEnd() || overflow)
            return false;
        const uint32_t g = res.prog.numGarblerInputs;
        if (tok[0] == 'g') {
            if (v >= g)
                return false;
            addr = uint32_t(v) + 1;
        } else {
            if (v >= res.prog.numEvaluatorInputs)
                return false;
            addr = g + uint32_t(v) + 1;
        }
        return true;
    }

    /** An instruction operand: w<N>, a label, or a builtin name. */
    bool
    operand(Scanner &sc, uint32_t &addr)
    {
        const std::string tok = sc.ident();
        if (tok.empty())
            return fail("expected operand, got '" + sc.rest() + "'");
        if (upper(tok) == "OORW") {
            return fail(
                "the OoRW sentinel cannot appear in program text (the "
                "stream generator rewrites out-of-window operands)");
        }
        if (isWireToken(tok)) {
            if (!wireNumber(sc, tok, addr))
                return false;
            if (addr == kOorAddr)
                return fail("w0 is the reserved OoRW sentinel");
            if (addr >= nextOut()) {
                return fail("operand " + tok +
                            " is not defined at this point (defined "
                            "wires are w1..w" +
                            std::to_string(nextOut() - 1) + ")");
            }
            return true;
        }
        auto it = labels.find(tok);
        if (it != labels.end()) {
            addr = it->second;
            return true;
        }
        if (builtinName(tok, addr))
            return true;
        return fail("undefined label '" + tok + "'");
    }

    bool
    keyEquals(Scanner &sc, const char *key)
    {
        const std::string tok = sc.ident();
        if (tok != key || !sc.lit('='))
            return fail(std::string("expected ") + key + "=<value>");
        return true;
    }

    bool
    keyNumber(Scanner &sc, const char *key, uint64_t &out)
    {
        if (!keyEquals(sc, key))
            return false;
        bool overflow = false;
        if (!sc.number(out, overflow))
            return fail(std::string("expected a number after ") + key +
                        "=");
        if (overflow)
            return fail(std::string(key) + " value out of range");
        return true;
    }

    /** key=<bitstring>, leftmost character = lowest wire index. */
    bool
    keyBits(Scanner &sc, const char *key, std::vector<bool> &out)
    {
        if (!keyEquals(sc, key))
            return false;
        // The value ends at whitespace; it may be empty.
        while (sc.pos < sc.s.size() && sc.s[sc.pos] != ' ' &&
               sc.s[sc.pos] != '\t' && sc.s[sc.pos] != '\r') {
            const char c = sc.s[sc.pos];
            if (c != '0' && c != '1')
                return fail(std::string("bad bit character '") + c +
                            "' in " + key + "=");
            out.push_back(c == '1');
            ++sc.pos;
        }
        return true;
    }

    bool
    directive(Scanner &sc)
    {
        const std::string name = sc.ident();
        if (name == "inputs")
            return dirInputs(sc);
        if (name == "const_one")
            return dirConstOne(sc);
        if (name == "outputs")
            return dirOutputs(sc);
        if (name == "test")
            return dirTest(sc);
        return fail("unknown directive '." + name + "'");
    }

    bool
    dirInputs(Scanner &sc)
    {
        if (sawInputs)
            return fail("duplicate .inputs directive");
        if (!res.prog.instrs.empty())
            return fail(".inputs must precede all instructions");
        uint64_t total = 0, g = 0, e = 0;
        bool overflow = false;
        if (!sc.number(total, overflow) || overflow)
            return fail("expected .inputs <total> garbler=<G> "
                        "evaluator=<E>");
        if (!keyNumber(sc, "garbler", g) ||
            !keyNumber(sc, "evaluator", e))
            return false;
        if (total > kMaxAddr)
            return fail("input count too large");
        if (g > total || e > total - g)
            return fail("garbler + evaluator inputs exceed the total");
        if (total > g + e + 1) {
            return fail("total may exceed garbler + evaluator only by "
                        "the constant-one wire");
        }
        if (!sc.atEnd())
            return fail("trailing junk after .inputs: '" + sc.rest() +
                        "'");
        res.prog.numInputs = uint32_t(total);
        res.prog.numGarblerInputs = uint32_t(g);
        res.prog.numEvaluatorInputs = uint32_t(e);
        sawInputs = true;
        return true;
    }

    bool
    dirConstOne(Scanner &sc)
    {
        if (!sawInputs)
            return fail(".const_one requires a preceding .inputs");
        if (res.prog.constOneAddr != kOorAddr)
            return fail("duplicate .const_one directive");
        const std::string tok = sc.ident();
        if (!isWireToken(tok))
            return fail("expected .const_one w<N>");
        uint32_t addr = 0;
        if (!wireNumber(sc, tok, addr))
            return false;
        const uint32_t parties =
            res.prog.numGarblerInputs + res.prog.numEvaluatorInputs;
        if (res.prog.numInputs != parties + 1) {
            return fail(".const_one requires an input slot beyond the "
                        "party inputs (total == garbler + evaluator + "
                        "1)");
        }
        if (addr != res.prog.numInputs) {
            return fail("the constant-one wire must be the last input "
                        "(w" +
                        std::to_string(res.prog.numInputs) + ")");
        }
        if (!sc.atEnd())
            return fail("trailing junk after .const_one: '" +
                        sc.rest() + "'");
        res.prog.constOneAddr = addr;
        return true;
    }

    bool
    dirOutputs(Scanner &sc)
    {
        if (sawOutputs)
            return fail("duplicate .outputs directive");
        sawOutputs = true;
        outputsLine = line;
        while (!sc.atEnd()) {
            const std::string tok = sc.ident();
            if (tok.empty())
                return fail("expected a wire or label in .outputs, "
                            "got '" +
                            sc.rest() + "'");
            uint32_t addr = 0;
            if (isWireToken(tok)) {
                if (!wireNumber(sc, tok, addr))
                    return false;
                if (addr == kOorAddr)
                    return fail("w0 cannot be a program output");
                // Range against numAddrs is checked at end-of-file so
                // .outputs may legally precede the instructions.
            } else {
                auto it = labels.find(tok);
                if (it != labels.end()) {
                    addr = it->second;
                } else if (!builtinName(tok, addr)) {
                    return fail("undefined label '" + tok +
                                "' in .outputs");
                }
            }
            res.prog.outputs.push_back(addr);
            outputLines.push_back(line);
        }
        return true;
    }

    bool
    dirTest(Scanner &sc)
    {
        AsmTestVector t;
        t.line = line;
        if (!keyBits(sc, "garbler", t.garbler) ||
            !keyBits(sc, "evaluator", t.evaluator) ||
            !keyBits(sc, "expect", t.expect))
            return false;
        if (!sc.atEnd())
            return fail("trailing junk after .test: '" + sc.rest() +
                        "'");
        res.tests.push_back(std::move(t));
        return true;
    }

    bool
    instruction(Scanner &sc, std::string first)
    {
        HaacOp op;
        const std::string u = upper(first);
        if (u == "AND")
            op = HaacOp::And;
        else if (u == "XOR")
            op = HaacOp::Xor;
        else if (u == "NOT")
            op = HaacOp::Not;
        else if (u == "NOP")
            op = HaacOp::Nop;
        else
            return fail("unknown opcode '" + first + "'");

        if (!sawInputs)
            return fail("instructions must follow the .inputs "
                        "directive");
        if (uint64_t(res.prog.instrs.size()) + res.prog.numInputs + 1 >=
            kMaxAddr)
            return fail("program too large");

        HaacInstruction ins;
        ins.op = op;
        ins.live = false;
        const uint32_t out = nextOut();

        if (!operand(sc, ins.a))
            return false;
        const bool two_operands =
            op == HaacOp::And || op == HaacOp::Xor;
        if (sc.lit(',')) {
            if (!two_operands)
                return fail(std::string(opName(op)) +
                            " takes one operand");
            if (!operand(sc, ins.b))
                return false;
        } else if (two_operands) {
            return fail(std::string(opName(op)) +
                        " takes two operands");
        } else {
            ins.b = ins.a; // canonical form for NOT/NOP
        }

        if (sc.litArrow()) {
            const std::string tok = sc.ident();
            if (!isWireToken(tok))
                return fail("expected w<N> after '->'");
            uint32_t addr = 0;
            if (!wireNumber(sc, tok, addr))
                return false;
            if (addr != out) {
                return fail(
                    "explicit output " + tok +
                    " disagrees with the implicit address w" +
                    std::to_string(out) + " of instruction " +
                    std::to_string(res.prog.instrs.size()));
            }
        }

        if (sc.lit('[')) {
            const std::string tok = sc.ident();
            if (upper(tok) != "LIVE" || !sc.lit(']'))
                return fail("expected [live]");
            ins.live = true;
        }

        bool explicit_tweak = false;
        if (sc.lit('(')) {
            const std::string tok = sc.ident();
            uint64_t v = 0;
            bool overflow = false;
            if (tok != "tweak" || !sc.number(v, overflow))
                return fail("expected (tweak <N>)");
            if (overflow || v > ~uint32_t(0))
                return fail("tweak value out of range");
            if (!sc.lit(')'))
                return fail("expected ')' after tweak");
            if (op != HaacOp::And)
                return fail("a tweak annotation is only valid on AND");
            ins.tweak = uint32_t(v);
            explicit_tweak = true;
        }

        uint8_t ge_hint = 0;
        bool has_hint = false;
        if (sc.lit('@')) {
            std::string tok = sc.ident();
            uint64_t v = 0;
            bool overflow = false;
            if (tok == "ge") {
                if (!sc.number(v, overflow))
                    return fail("expected @ge <N>");
            } else if (tok.size() > 2 && tok.compare(0, 2, "ge") == 0) {
                Scanner digits{tok, 2};
                if (!digits.number(v, overflow) || !digits.atEnd())
                    return fail("bad @ge annotation '@" + tok + "'");
            } else {
                return fail("unknown annotation '@" + tok + "'");
            }
            if (overflow || v > 255)
                return fail("@ge index out of range (0..255)");
            ge_hint = uint8_t(v);
            has_hint = true;
        }

        if (!sc.atEnd())
            return fail("trailing junk after instruction: '" +
                        sc.rest() + "'");

        if (op == HaacOp::And && !explicit_tweak)
            ins.tweak = andCount;
        if (op == HaacOp::And)
            ++andCount;

        for (const auto &lbl : pendingLabels)
            labels.emplace(lbl.first, out);
        pendingLabels.clear();

        res.prog.instrs.push_back(ins);
        res.instrLines.push_back(line);
        res.geHints.push_back(ge_hint);
        anyGeHint = anyGeHint || has_hint;
        return true;
    }

    bool
    statement(Scanner &sc)
    {
        // Label prefixes: `<number>:` (instruction-index annotation)
        // or `<ident>:` (symbolic output label), any number of them.
        for (;;) {
            sc.skipWs();
            const size_t save = sc.pos;
            uint64_t num = 0;
            bool overflow = false;
            if (sc.number(num, overflow)) {
                if (!sc.lit(':'))
                    return fail(
                        "expected ':' after instruction index");
                if (overflow || num != res.prog.instrs.size()) {
                    return fail(
                        "instruction index label " + std::to_string(num) +
                        " does not match position " +
                        std::to_string(res.prog.instrs.size()));
                }
                continue;
            }
            const std::string tok = sc.ident();
            if (tok.empty()) {
                sc.pos = save;
                break;
            }
            if (sc.lit(':')) {
                if (isWireToken(tok) || isOpcodeToken(tok) ||
                    upper(tok) == "OORW")
                    return fail("'" + tok +
                                "' cannot be used as a label");
                if (labels.count(tok)) {
                    return fail("duplicate label '" + tok + "'");
                }
                for (const auto &p : pendingLabels)
                    if (p.first == tok)
                        return fail("duplicate label '" + tok + "'");
                pendingLabels.emplace_back(tok, line);
                continue;
            }
            // Not a label: this token starts the instruction.
            return instruction(sc, tok);
        }
        if (sc.atEnd())
            return true; // label-only (or blank) line
        if (sc.lit('.'))
            return directive(sc);
        return fail("cannot parse '" + sc.rest() + "'");
    }

    bool
    finish()
    {
        const uint32_t eof_line = line + 1;
        if (!pendingLabels.empty()) {
            return fail("dangling label '" + pendingLabels[0].first +
                            "': no instruction follows",
                        pendingLabels[0].second);
        }
        if (!sawInputs)
            return fail("missing .inputs directive", eof_line);
        if (!sawOutputs)
            return fail("missing .outputs directive", eof_line);
        const uint32_t parties =
            res.prog.numGarblerInputs + res.prog.numEvaluatorInputs;
        if (res.prog.numInputs == parties + 1 &&
            res.prog.constOneAddr == kOorAddr) {
            return fail("the input count implies a constant-one wire; "
                        "add .const_one w" +
                            std::to_string(res.prog.numInputs),
                        eof_line);
        }
        for (size_t i = 0; i < res.prog.outputs.size(); ++i) {
            if (res.prog.outputs[i] >= res.prog.numAddrs()) {
                return fail("output w" +
                                std::to_string(res.prog.outputs[i]) +
                                " is never defined",
                            outputLines[i]);
            }
        }
        for (const AsmTestVector &t : res.tests) {
            if (t.garbler.size() != res.prog.numGarblerInputs)
                return fail(".test garbler= has " +
                                std::to_string(t.garbler.size()) +
                                " bits; the program declares " +
                                std::to_string(
                                    res.prog.numGarblerInputs),
                            t.line);
            if (t.evaluator.size() != res.prog.numEvaluatorInputs)
                return fail(".test evaluator= has " +
                                std::to_string(t.evaluator.size()) +
                                " bits; the program declares " +
                                std::to_string(
                                    res.prog.numEvaluatorInputs),
                            t.line);
            if (t.expect.size() != res.prog.outputs.size())
                return fail(".test expect= has " +
                                std::to_string(t.expect.size()) +
                                " bits; the program has " +
                                std::to_string(
                                    res.prog.outputs.size()) +
                                " outputs",
                            t.line);
        }
        const std::string err = res.prog.check();
        if (!err.empty())
            return fail("program fails the address discipline: " + err,
                        eof_line);
        if (!anyGeHint)
            res.geHints.clear();
        res.ok = true;
        return true;
    }
};

} // namespace

AsmResult
parseAsm(const std::string &text)
{
    Parser p;
    size_t pos = 0;
    while (pos <= text.size()) {
        const size_t nl = text.find('\n', pos);
        const size_t end = nl == std::string::npos ? text.size() : nl;
        std::string raw = text.substr(pos, end - pos);
        ++p.line;
        const size_t comment = raw.find(';');
        if (comment != std::string::npos)
            raw.resize(comment);
        Scanner sc{raw, 0};
        if (!sc.atEnd() && !p.statement(sc))
            return p.res;
        if (nl == std::string::npos)
            break;
        pos = nl + 1;
    }
    p.finish();
    if (p.res.ok) {
        // Structural lint only (swwWires == 0): no window geometry
        // exists at parse time. Findings do not flip `ok`.
        LintOptions lint;
        lint.instrLines = &p.res.instrLines;
        p.res.lints = verifyProgram(p.res.prog, lint).diags;
    }
    return p.res;
}

AsmResult
parseAsmFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        AsmResult res;
        res.error = "cannot open file: " + path;
        return res;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return parseAsm(ss.str());
}

} // namespace haac
