/**
 * @file
 * Differential conformance harness for the HAAC ISA (ROADMAP arc 4,
 * lc3tools-grader style).
 *
 * Three pieces:
 *
 *  - a seeded generator of random-but-well-formed HaacPrograms:
 *    acyclic by construction (operands always address earlier wires),
 *    mixed AND/XOR/NOT/NOP, operand locality skewed so some reads land
 *    below the SWW window (forcing OoRW traffic), and live bits chosen
 *    per ESW, all-live, or ESW-plus-random-extras. These are programs
 *    the circuit compiler would never emit — exactly the schedules the
 *    timing model has never seen;
 *
 *  - a differential check that runs one program through the plaintext
 *    oracle (executePlain), the full-fidelity functional machine
 *    (runFunctional: SWW windows, OoRW pop order, garbling invariant)
 *    driven by the timing model's recorded schedule, and the timing
 *    model itself (runSimulation), and diffs outputs wire-exact;
 *
 *  - a grader for hand-written `.haac` cases with `.test` expectation
 *    vectors (tests/asm/).
 *
 * Everything is deterministic in the seed, so any failure is a
 * committable regression case: fuzzConformance returns the offending
 * program as canonical `.haac` text with its inputs appended as a
 * `.test` vector.
 */
#ifndef HAAC_CORE_ISA_CONFORMANCE_H
#define HAAC_CORE_ISA_CONFORMANCE_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/isa/program.h"
#include "core/sim/config.h"

namespace haac {

/** Generator knobs. Defaults suit the ctest fuzz sweep. */
struct GenOptions
{
    uint32_t minInputs = 2; ///< party inputs (excl. const-one)
    uint32_t maxInputs = 20;
    uint32_t minInstrs = 4;
    uint32_t maxInstrs = 300;
    bool allowNop = true;
    bool allowConstOne = true;

    /** Percent chance an operand is drawn below the SWW window base. */
    uint32_t farOperandPct = 25;
};

/**
 * Generate one well-formed program. Deterministic: same (seed, opts,
 * sww_wires) => same program. The result always passes
 * HaacProgram::check() and is executable at @p sww_wires.
 */
HaacProgram generateProgram(uint64_t seed, const GenOptions &opts,
                            uint32_t sww_wires);

/**
 * Derive a small adversarial HaacConfig from @p seed: few GEs, tiny
 * SWW (64-256 wires, so windows slide constantly), cramped queue SRAM
 * and write buffer, both roles, forwarding on/off.
 */
HaacConfig conformanceConfig(uint64_t seed);

/** Outcome of one differential run. */
struct ConformanceResult
{
    bool ok = false;
    std::string error;

    std::vector<bool> expected;          ///< plaintext oracle
    std::vector<bool> functionalOutputs; ///< functional machine
    uint64_t timingCycles = 0;           ///< Combined-mode cycles
    uint64_t oorPops = 0;                ///< functional OoRW pops
};

/**
 * Run @p prog through oracle, functional machine, and timing model on
 * @p cfg with the given inputs; wire-exact output diff plus timing
 * sanity (every instruction issues, cycles advance).
 */
ConformanceResult checkConformance(const HaacProgram &prog,
                                   const HaacConfig &cfg,
                                   const std::vector<bool> &garbler,
                                   const std::vector<bool> &evaluator);

/** One fuzz failure, reproducible from the dump alone. */
struct FuzzFailure
{
    uint64_t programSeed = 0;
    std::string error;

    /**
     * The offending program as canonical .haac text, with the failing
     * inputs as a `.test` vector and the config as comments — drop it
     * into tests/asm/ as a regression case.
     */
    std::string haacDump;
};

struct FuzzSummary
{
    uint64_t programs = 0;
    uint64_t totalInstructions = 0;
    uint64_t totalOorPops = 0; ///< proof the window actually slid
    std::vector<FuzzFailure> failures; ///< capped at 10
};

/**
 * Generate and differentially check @p count programs derived from
 * @p seed (program i uses splitmix64-mixed seed+i, its own config,
 * and its own random inputs).
 */
FuzzSummary fuzzConformance(uint64_t seed, uint32_t count,
                            const GenOptions &opts = GenOptions{});

/** Outcome of one sharded differential run. */
struct ShardConformanceResult
{
    bool ok = false;
    std::string error;

    std::vector<bool> expected; ///< plaintext oracle
    uint32_t shards = 0;        ///< shards that actually ran
    uint32_t rounds = 0;        ///< timing rounds to the fixed point
    uint64_t crossWires = 0;    ///< wires that hopped shards
    uint64_t cycles = 0;        ///< slowest-shard Combined cycles
};

/**
 * Differential check of the multi-core path (arc-4 follow-on to
 * checkConformance): run @p prog through the plaintext oracle and
 * through the shard coordinator at @p shards in-process workers —
 * which drives runShardSimulation() per shard with real import/export
 * cross-shard timing — and diff the assembled outputs wire-exact.
 * Also checks shard telemetry sanity: the requested shard count ran,
 * the cross-shard schedule converged, every instruction retired
 * exactly once across shards, and cycles advance.
 *
 * The config's GE count is raised to @p shards when smaller (the
 * coordinator clamps shards to [1, numGes], and a silent 1-shard run
 * would test nothing).
 */
ShardConformanceResult
checkShardConformance(const HaacProgram &prog, const HaacConfig &cfg,
                      uint32_t shards,
                      const std::vector<bool> &garbler,
                      const std::vector<bool> &evaluator);

struct ShardFuzzSummary
{
    uint64_t programs = 0;
    uint64_t totalInstructions = 0;
    /** Proof labels genuinely hopped shards across the sweep. */
    uint64_t totalCrossWires = 0;
    std::vector<FuzzFailure> failures; ///< capped at 10
};

/**
 * Sharded fuzz sweep: generate @p count programs exactly as
 * fuzzConformance does (same seed derivation, config, and inputs, so
 * a divergence here and not there isolates the sharded path) and
 * differentially check each at @p shards workers.
 */
ShardFuzzSummary
fuzzShardConformance(uint64_t seed, uint32_t count, uint32_t shards,
                     const GenOptions &opts = GenOptions{});

/** Grader outcome for one hand-written .haac case. */
struct AsmCaseResult
{
    bool ok = false;
    std::string error;
    uint32_t vectorsRun = 0;
};

/**
 * Grader mode: parse @p path and run every `.test` vector through the
 * oracle + functional machine + timing model on @p cfg. A case with no
 * `.test` vectors fails (expectation files must expect something).
 */
AsmCaseResult runAsmCase(const std::string &path,
                         const HaacConfig &cfg);

} // namespace haac

#endif // HAAC_CORE_ISA_CONFORMANCE_H
