#include "core/isa/disasm.h"

#include <ostream>
#include <sstream>

namespace haac {

const char *
opName(HaacOp op)
{
    switch (op) {
      case HaacOp::Nop:
        return "NOP";
      case HaacOp::And:
        return "AND";
      case HaacOp::Xor:
        return "XOR";
      case HaacOp::Not:
        return "NOT";
    }
    return "???";
}

namespace {

std::string
wireName(uint32_t addr)
{
    if (addr == kOorAddr)
        return "oorw"; // operand comes from the OoRW queue
    return "w" + std::to_string(addr);
}

} // namespace

std::string
toString(const HaacInstruction &ins, uint32_t out_addr)
{
    std::ostringstream os;
    os << opName(ins.op) << ' ' << wireName(ins.a);
    if (ins.op == HaacOp::And || ins.op == HaacOp::Xor)
        os << ", " << wireName(ins.b);
    if (out_addr != kOorAddr)
        os << " -> " << wireName(out_addr);
    if (ins.live)
        os << " [live]";
    if (ins.op == HaacOp::And)
        os << " (tweak " << ins.tweak << ")";
    return os.str();
}

void
disassemble(const HaacProgram &prog, std::ostream &os,
            size_t max_instrs)
{
    os << "; inputs: w1..w" << prog.numInputs;
    if (prog.constOneAddr != kOorAddr)
        os << " (w" << prog.constOneAddr << " = const 1)";
    os << "\n";
    const size_t n = max_instrs == 0
                         ? prog.instrs.size()
                         : std::min(max_instrs, prog.instrs.size());
    for (size_t k = 0; k < n; ++k) {
        os << k << ":\t"
           << toString(prog.instrs[k], prog.outputAddrOf(k)) << "\n";
    }
    if (n < prog.instrs.size())
        os << "; ... " << prog.instrs.size() - n << " more\n";
    os << "; outputs:";
    for (uint32_t o : prog.outputs)
        os << " w" << o;
    os << "\n";
}

} // namespace haac
