#include "core/isa/disasm.h"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace haac {

const char *
opName(HaacOp op)
{
    switch (op) {
      case HaacOp::Nop:
        return "NOP";
      case HaacOp::And:
        return "AND";
      case HaacOp::Xor:
        return "XOR";
      case HaacOp::Not:
        return "NOT";
    }
    return "???";
}

namespace {

std::string
wireName(uint32_t addr)
{
    if (addr == kOorAddr)
        return "oorw"; // operand comes from the OoRW queue
    return "w" + std::to_string(addr);
}

} // namespace

std::string
wireName(const HaacProgram &prog, uint32_t addr)
{
    if (addr == kOorAddr)
        return "oorw";
    if (prog.constOneAddr != kOorAddr && addr == prog.constOneAddr)
        return "one";
    if (addr >= 1 && addr <= prog.numGarblerInputs)
        return "g" + std::to_string(addr - 1);
    if (addr > prog.numGarblerInputs &&
        addr <= prog.numGarblerInputs + prog.numEvaluatorInputs)
        return "e" + std::to_string(addr - prog.numGarblerInputs - 1);
    return "w" + std::to_string(addr);
}

std::string
toString(const HaacInstruction &ins, uint32_t out_addr)
{
    std::ostringstream os;
    os << opName(ins.op) << ' ' << wireName(ins.a);
    if (ins.op == HaacOp::And || ins.op == HaacOp::Xor)
        os << ", " << wireName(ins.b);
    if (out_addr != kOorAddr)
        os << " -> " << wireName(out_addr);
    if (ins.live)
        os << " [live]";
    if (ins.op == HaacOp::And)
        os << " (tweak " << ins.tweak << ")";
    return os.str();
}

void
disassemble(const HaacProgram &prog, std::ostream &os, size_t max_instrs,
            const std::vector<uint8_t> *ge_of)
{
    os << "; haac assembly: " << prog.instrs.size() << " instructions ("
       << prog.numAnd() << " AND / " << prog.numXor() << " XOR / "
       << prog.numNot() << " NOT), " << prog.outputs.size()
       << " outputs\n";
    os << ".inputs " << prog.numInputs
       << " garbler=" << prog.numGarblerInputs
       << " evaluator=" << prog.numEvaluatorInputs << "\n";
    if (prog.constOneAddr != kOorAddr)
        os << ".const_one w" << prog.constOneAddr << "\n";
    const size_t n = max_instrs == 0
                         ? prog.instrs.size()
                         : std::min(max_instrs, prog.instrs.size());
    for (size_t k = 0; k < n; ++k) {
        const HaacInstruction &ins = prog.instrs[k];
        os << k << ":\t" << opName(ins.op) << ' '
           << wireName(prog, ins.a);
        if (ins.op == HaacOp::And || ins.op == HaacOp::Xor)
            os << ", " << wireName(prog, ins.b);
        os << " -> w" << prog.outputAddrOf(k);
        if (ins.live)
            os << " [live]";
        if (ins.op == HaacOp::And)
            os << " (tweak " << ins.tweak << ")";
        if (ge_of && k < ge_of->size())
            os << " @ge" << unsigned((*ge_of)[k]);
        os << "\n";
    }
    if (n < prog.instrs.size())
        os << "; ... " << prog.instrs.size() - n << " more\n";
    os << ".outputs";
    for (uint32_t o : prog.outputs)
        os << ' ' << wireName(prog, o);
    os << "\n";
}

std::string
toAsm(const HaacProgram &prog)
{
    std::ostringstream os;
    disassemble(prog, os, 0);
    return os.str();
}

} // namespace haac
