#include "api/run_report.h"

#include <sstream>

namespace haac {

const char *
simModeName(SimMode mode)
{
    switch (mode) {
    case SimMode::Combined:
        return "combined";
    case SimMode::ComputeOnly:
        return "compute";
    case SimMode::TrafficOnly:
        return "traffic";
    }
    return "?";
}

const char *
roleName(Role role)
{
    return role == Role::Garbler ? "garbler" : "evaluator";
}

const char *
dramKindName(DramKind kind)
{
    return kind == DramKind::Ddr4 ? "ddr4" : "hbm2";
}

namespace {

/** Minimal JSON writer: objects with string/number/bool members. */
class JsonObject
{
  public:
    void
    add(const char *key, const std::string &value)
    {
        sep();
        os_ << '"' << key << "\":\"";
        for (char ch : value) {
            switch (ch) {
            case '"':
                os_ << "\\\"";
                break;
            case '\\':
                os_ << "\\\\";
                break;
            case '\n':
                os_ << "\\n";
                break;
            default:
                if (static_cast<unsigned char>(ch) < 0x20)
                    break; // drop other control characters
                os_ << ch;
            }
        }
        os_ << '"';
    }

    void
    add(const char *key, uint64_t value)
    {
        sep();
        os_ << '"' << key << "\":" << value;
    }

    void
    add(const char *key, double value)
    {
        sep();
        os_ << '"' << key << "\":" << value;
    }

    void
    add(const char *key, bool value)
    {
        sep();
        os_ << '"' << key << "\":" << (value ? "true" : "false");
    }

    /** Open a nested object; close with end(). */
    void
    begin(const char *key)
    {
        sep();
        os_ << '"' << key << "\":{";
        first_ = true;
    }

    void
    end()
    {
        os_ << '}';
        first_ = false;
    }

    std::string
    str() const
    {
        return "{" + os_.str() + "}";
    }

  private:
    void
    sep()
    {
        if (!first_)
            os_ << ',';
        first_ = false;
    }

    std::ostringstream os_;
    bool first_ = true;
};

std::string
outputBits(const std::vector<bool> &bits)
{
    std::string s;
    s.reserve(bits.size());
    for (bool b : bits)
        s += b ? '1' : '0';
    return s;
}

std::string
joinU64(const std::vector<uint64_t> &vals)
{
    std::string s;
    for (uint64_t v : vals) {
        if (!s.empty())
            s += ',';
        s += std::to_string(v);
    }
    return s;
}

} // namespace

std::string
RunReport::toJson() const
{
    JsonObject j;
    j.add("backend", backend);
    j.add("workload", workload);
    j.add("label", label);
    j.add("host_seconds", hostSeconds);
    j.add("modeled_seconds", modeledSeconds());
    j.add("gates", gates);
    j.add("gates_per_sec", gatesPerSecond());
    j.add("wire_bytes_per_sec", wireBytesPerSecond());

    j.begin("config");
    j.add("ges", uint64_t(config.numGes));
    j.add("sww_bytes", uint64_t(config.swwBytes));
    j.add("banks_per_ge", uint64_t(config.banksPerGe));
    j.add("dram", std::string(dramKindName(config.dram)));
    j.add("role", std::string(roleName(config.role)));
    j.add("forwarding", config.forwarding);
    j.add("mode", std::string(simModeName(mode)));
    j.end();

    if (hasOutputs) {
        j.begin("outputs");
        j.add("count", uint64_t(outputs.size()));
        j.add("bits", outputBits(outputs));
        j.end();
    }

    if (hasComm) {
        j.begin("comm");
        j.add("table_bytes", comm.tableBytes);
        j.add("input_label_bytes", comm.inputLabelBytes);
        j.add("ot_bytes", comm.otBytes);
        j.add("ot_uplink_bytes", comm.otUplinkBytes);
        j.add("output_decode_bytes", comm.outputDecodeBytes);
        j.add("total_bytes", comm.totalBytes);
        j.end();
    }

    if (hasNet) {
        j.begin("net");
        j.add("role", std::string(roleName(net.role)));
        j.add("endpoint", net.endpoint);
        j.add("raw_bytes_sent", net.rawBytesSent);
        j.add("raw_bytes_received", net.rawBytesReceived);
        j.add("control_bytes", net.controlBytes);
        j.add("table_segments", net.tableSegments);
        j.add("segment_tables", uint64_t(net.segmentTables));
        j.add("ot_mode", std::string(otModeName(net.otMode)));
        j.add("gates", net.gates);
        j.add("gates_per_second", net.gatesPerSecond);
        j.end();
    }

    if (hasShard) {
        j.begin("shard");
        j.add("shards", uint64_t(shard.shards));
        j.add("requested", uint64_t(shard.requested));
        j.add("rounds", uint64_t(shard.rounds));
        j.add("converged", shard.converged);
        j.add("cross_wires", shard.crossWires);
        j.add("live_flipped", shard.liveFlipped);
        j.add("shard_cycles", joinU64(shard.shardCycles));
        j.add("shard_instructions", joinU64(shard.shardInstructions));
        j.end();
    }

    if (hasSim) {
        j.begin("compile");
        j.add("instructions", compile.instructions);
        j.add("and_gates", compile.andGates);
        j.add("live_wires", compile.liveWires);
        j.add("oor_reads", compile.oorReads);
        j.end();

        j.begin("sim");
        j.add("cycles", sim.cycles);
        j.add("seconds", sim.seconds());
        j.add("instructions", sim.instructions);
        j.add("and_ops", sim.andOps);
        j.add("xor_ops", sim.xorOps);
        j.add("not_ops", sim.notOps);
        j.add("traffic_bytes", sim.totalTrafficBytes());
        j.add("wire_traffic_bytes", sim.wireTrafficBytes());
        j.add("stall_operand", sim.stallOperand);
        j.add("stall_instr_queue", sim.stallInstrQueue);
        j.add("stall_bank", sim.stallBank);
        j.add("ge_utilization", sim.geUtilization());
        j.add("forward_hits", sim.forwardHits);
        j.end();
    }

    if (hasServe) {
        j.begin("serve");
        j.add("compile_cache_hit", serve.compileCacheHit);
        j.add("compile_cache_hits", serve.compileCacheHits);
        j.add("compile_cache_misses", serve.compileCacheMisses);
        j.add("pooled_garbling", serve.pooledGarbling);
        j.add("ot_setup_reused", serve.otSetupReused);
        j.add("pool_hits", serve.poolHits);
        j.add("pool_misses", serve.poolMisses);
        j.add("queries", serve.queries);
        j.add("queries_per_second", serve.queriesPerSecond);
        j.end();
    }

    if (hasChain) {
        j.begin("chain");
        j.add("components", uint64_t(chain.components));
        j.add("links", uint64_t(chain.links));
        j.add("link_bytes", chain.linkBytes);
        j.add("link_frames", uint64_t(chain.linkFrames));
        j.add("pooled_components", uint64_t(chain.pooledComponents));
        j.end();
    }

    if (hasEnergy) {
        j.begin("energy");
        j.add("half_gate_j", energy.halfGateJ);
        j.add("crossbar_j", energy.crossbarJ);
        j.add("sram_j", energy.sramJ);
        j.add("others_j", energy.othersJ);
        j.add("hbm2_phy_j", energy.hbm2PhyJ);
        j.add("total_j", energy.totalJ());
        j.end();
    }

    return j.str();
}

std::string
RunReport::csvHeader()
{
    return "backend,workload,label,mode,ges,sww_bytes,dram,role,"
           "cycles,modeled_seconds,instructions,live_wires,oor_reads,"
           "traffic_bytes,comm_total_bytes,energy_total_j,host_seconds,"
           "gates,gates_per_sec,wire_bytes_per_sec";
}

std::string
RunReport::csvRow() const
{
    std::ostringstream os;
    auto quote = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string q = "\"";
        for (char ch : s) {
            if (ch == '"')
                q += '"';
            q += ch;
        }
        return q + "\"";
    };
    os << quote(backend) << ',' << quote(workload) << ','
       << quote(label) << ',' << simModeName(mode) << ','
       << config.numGes << ',' << config.swwBytes << ','
       << dramKindName(config.dram) << ',' << roleName(config.role)
       << ',' << (hasSim ? sim.cycles : 0) << ',' << modeledSeconds()
       << ',' << (hasSim ? sim.instructions : 0) << ','
       << (hasSim ? compile.liveWires : 0) << ','
       << (hasSim ? compile.oorReads : 0) << ','
       << (hasSim ? sim.totalTrafficBytes() : 0) << ','
       << (hasComm ? comm.totalBytes : 0) << ','
       << (hasEnergy ? energy.totalJ() : 0.0) << ',' << hostSeconds
       << ',' << gates << ',' << gatesPerSecond() << ','
       << wireBytesPerSecond();
    return os.str();
}

std::string
RunReport::toCsv() const
{
    return csvHeader() + "\n" + csvRow() + "\n";
}

} // namespace haac
