/**
 * @file
 * RunReport: the one structured result every backend returns.
 *
 * A single execution — software GC on the CPU or the HAAC model — used
 * to scatter its results across ProtocolResult, CompileStats, SimStats,
 * channel counters, and the energy model. RunReport merges them so
 * callers compare backends field by field, and serializes itself to CSV
 * or JSON so benchmark trajectories can accumulate without screen
 * scraping. Sections that a backend did not produce are flagged absent
 * (hasComm / hasSim / hasEnergy / hasOutputs) rather than zero-filled.
 */
#ifndef HAAC_API_RUN_REPORT_H
#define HAAC_API_RUN_REPORT_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/compiler/passes.h"
#include "core/sim/config.h"
#include "core/sim/engine.h"
#include "core/sim/stats.h"
#include "gc/ot.h"
#include "platform/energy_model.h"

namespace haac {

/** Human-readable SimMode name ("combined", "compute", "traffic"). */
const char *simModeName(SimMode mode);

/** Human-readable Role / DramKind names for serialization. */
const char *roleName(Role role);
const char *dramKindName(DramKind kind);

struct RunReport
{
    /** Registry name of the backend that produced this report. */
    std::string backend;
    /** Workload / circuit name (empty when the caller gave none). */
    std::string workload;
    /** Free-form caller tag, e.g. the compiler configuration swept. */
    std::string label;

    /** @name Circuit outputs */
    /// @{
    std::vector<bool> outputs;
    bool hasOutputs = false;
    /// @}

    /** @name Communication accounting (software GC backend) */
    /// @{
    struct Communication
    {
        uint64_t tableBytes = 0;
        uint64_t inputLabelBytes = 0;
        uint64_t otBytes = 0;
        /** Evaluator→garbler OT traffic (real OT only; see
         *  ProtocolResult::otUplinkBytes). Not part of totalBytes,
         *  which counts garbler→evaluator payload. */
        uint64_t otUplinkBytes = 0;
        uint64_t outputDecodeBytes = 0;
        uint64_t totalBytes = 0;
    };
    Communication comm;
    bool hasComm = false;
    /// @}

    /** @name Networked execution (remote-gc backend / haac_server) */
    /// @{
    struct Net
    {
        /** GC role this endpoint played. */
        Role role = Role::Garbler;
        /** Transport description ("tcp:1.2.3.4:9000", "loopback:a"). */
        std::string endpoint;
        /** True wire bytes (frame headers and handshakes included). */
        uint64_t rawBytesSent = 0;
        uint64_t rawBytesReceived = 0;
        /** Fingerprint + choice bits + result echo payload. */
        uint64_t controlBytes = 0;
        /** Frames the garbled-table stream used (one per segment). */
        uint64_t tableSegments = 0;
        /** Tables per segment the garbler streamed with. */
        uint32_t segmentTables = 0;
        /** OT construction the session ran ("iknp" or "sim-ot"). */
        OtMode otMode = OtMode::Iknp;
        uint64_t gates = 0;
        double gatesPerSecond = 0;
    };
    Net net;
    bool hasNet = false;
    /// @}

    /** @name Sharded simulation (haac-sim-sharded backend) */
    /// @{
    struct Shard
    {
        /** Shards actually run (requested, clamped to GE count). */
        uint32_t shards = 1;
        uint32_t requested = 1;
        /** Timing iterations until the cross-shard fixed point. */
        uint32_t rounds = 0;
        bool converged = true;
        /** Wire addresses imported across a shard boundary. */
        uint64_t crossWires = 0;
        /** ESW-dead wires sharding forced back off-chip. */
        uint64_t liveFlipped = 0;
        /** Final-round cycles / instructions per shard. */
        std::vector<uint64_t> shardCycles;
        std::vector<uint64_t> shardInstructions;
    };
    Shard shard;
    bool hasShard = false;
    /// @}

    /** @name Accelerator pipeline (HAAC sim backend) */
    /// @{
    CompileStats compile;
    SimStats sim;
    bool hasSim = false;

    EnergyBreakdown energy;
    bool hasEnergy = false;
    /// @}

    /** @name Serving layer (src/serve: compile cache + garble pool) */
    /// @{
    struct Serve
    {
        /** This run's compile was answered from the CompileCache. */
        bool compileCacheHit = false;
        /** Cache-wide counters at report time (CacheStats). */
        uint64_t compileCacheHits = 0;
        uint64_t compileCacheMisses = 0;
        /** The garbler replayed a pooled GarbledInstance. */
        bool pooledGarbling = false;
        /** The session reused a cached base-OT + IKNP setup. */
        bool otSetupReused = false;
        /** Pool-wide counters at report time (PoolStats). */
        uint64_t poolHits = 0;
        uint64_t poolMisses = 0;
        /** Aggregate figures for multi-query reports (bench/). */
        uint64_t queries = 0;
        double queriesPerSecond = 0;
    };
    Serve serve;
    bool hasServe = false;
    /// @}

    /** @name Chained execution (src/chain: pre-garbled components) */
    /// @{
    struct Chain
    {
        /** Component instances linked into the session. */
        uint32_t components = 0;
        /** Label-translation tables shipped. */
        uint32_t links = 0;
        /** Link-table stream bytes (typed frames, headers included). */
        uint64_t linkBytes = 0;
        /** Frames the link-table stream used (one per linked node). */
        uint32_t linkFrames = 0;
        /** Components served pre-garbled from a ComponentPool. */
        uint32_t pooledComponents = 0;
    };
    Chain chain;
    bool hasChain = false;
    /// @}

    /** Configuration echo, so a serialized report is self-describing. */
    HaacConfig config;
    SimMode mode = SimMode::Combined;

    /** Host wall-clock seconds spent producing this report. */
    double hostSeconds = 0;

    /**
     * Gates the execution covered: netlist gates for the GC backends,
     * compiled instructions for the simulator (every gate becomes one
     * instruction). The basis of the derived gates_per_sec rate.
     */
    uint64_t gates = 0;

    /**
     * The time the backend models for the execution: simulated
     * accelerator seconds when available, otherwise host seconds.
     */
    double
    modeledSeconds() const
    {
        return hasSim ? sim.seconds() : hostSeconds;
    }

    /** Derived throughput over modeled time (0 when time is 0). */
    double
    gatesPerSecond() const
    {
        const double s = modeledSeconds();
        return s > 0 ? double(gates) / s : 0;
    }

    /**
     * Garbler→evaluator wire payload this run moved: measured protocol
     * bytes when communication was real, the simulator's modeled wire
     * traffic otherwise.
     */
    uint64_t
    wireBytes() const
    {
        if (hasComm)
            return comm.totalBytes;
        if (hasSim)
            return sim.wireTrafficBytes();
        return 0;
    }

    /** Derived wire bandwidth over modeled time (0 when time is 0). */
    double
    wireBytesPerSecond() const
    {
        const double s = modeledSeconds();
        return s > 0 ? double(wireBytes()) / s : 0;
    }

    /** One JSON object (single line, stable key order). */
    std::string toJson() const;

    /** CSV column names matching csvRow(). */
    static std::string csvHeader();
    /** One CSV data row. */
    std::string csvRow() const;
    /** Header + row (convenience for one-off dumps). */
    std::string toCsv() const;
};

} // namespace haac

#endif // HAAC_API_RUN_REPORT_H
