/**
 * @file
 * haac::Session — the one entry point for running a garbled circuit.
 *
 * The paper's core claim is one program, two executions: the same
 * circuit runs on the EMP-class software baseline and on the HAAC
 * accelerator model, and every figure compares the two. A Session owns
 * the circuit, both parties' inputs, the compile options, and the
 * accelerator configuration; backends (api/backend.h) supply the
 * execution semantics and all return the same structured RunReport:
 *
 *     Session s(vipWorkload("Hamm", false));
 *     RunReport cpu = s.runSoftwareGc();   // real 2PC protocol
 *     RunReport sim = s.runHaacSim();      // cycle-level HAAC model
 *
 * Setters are fluent and the Session is reusable: sweep configurations
 * by mutating and re-running, as the bench binaries do.
 */
#ifndef HAAC_API_SESSION_H
#define HAAC_API_SESSION_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/backend.h"
#include "api/run_report.h"
#include "circuit/netlist.h"
#include "core/compiler/passes.h"
#include "core/isa/program.h"
#include "core/sim/config.h"
#include "core/sim/engine.h"

namespace haac {

struct Workload;

namespace serve {
class CompileCache;
}

namespace chain {
struct ChainPlan;
}

class Session
{
  public:
    /** A session over a bare circuit (no inputs yet). */
    explicit Session(Netlist netlist, std::string name = "");

    /**
     * A session over a workload bundle: adopts its netlist, name, and
     * both parties' sample inputs.
     */
    explicit Session(const Workload &workload);

    /** @name Fluent configuration */
    /// @{
    Session &withInputs(std::vector<bool> garbler_bits,
                        std::vector<bool> evaluator_bits);
    Session &withSeed(uint64_t seed);
    /**
     * OT construction for the evaluator's input labels (software-gc
     * and remote-gc backends): real IKNP extension by default,
     * OtMode::Simulated for the deterministic stand-in. On a remote
     * evaluator the garbler's setting wins (it travels in the
     * fingerprint).
     */
    Session &withOtMode(OtMode mode);
    Session &withCompileOptions(const CompileOptions &opts);
    Session &withConfig(const HaacConfig &config);
    Session &withMode(SimMode mode);
    /** Caller tag copied into every RunReport (sweep labels). */
    Session &withLabel(std::string label);
    /**
     * Networked execution (the "remote-gc" backend): which GC role
     * this process plays and where the peer is. @p endpoint is
     * "host:port" to connect or "listen:port" / "listen:host:port"
     * to accept one connection. @p spec is sent when the peer turns
     * out to be a haac_server ("Million:32", "Hamm", ...); peers
     * with their own circuit ignore it.
     */
    Session &withRemote(Role role, std::string endpoint,
                        std::string spec = "");
    /** Garbled tables per streamed segment frame (remote backends). */
    Session &withSegmentTables(uint32_t tables);
    /**
     * Sharded simulation (the "haac-sim-sharded" backend): split the
     * compiled program's GE streams across @p shards workers. With no
     * @p worker_endpoints the workers are in-process loopback threads;
     * otherwise shard s connects to endpoint s mod N ("host:port" of a
     * `haac_server --shard-worker`).
     */
    Session &withShards(uint32_t shards,
                        std::vector<std::string> worker_endpoints = {});
    /**
     * Whether simulation backends should also interpret the compiled
     * program to produce circuit outputs (default true). Benchmarks
     * that only read timing turn this off to skip the plaintext pass.
     */
    Session &withOutputs(bool want);
    /**
     * Chained execution (src/chain): adopt a component-chaining plan.
     * The session's netlist becomes the plan's monolithic()
     * equivalent, so the local backends (software-gc, haac-sim) run
     * exactly the circuit a chained execution must match bit for bit,
     * while the remote-gc backend switches to the chained protocol:
     * the garbler links components garbled fresh from the session
     * seed, the evaluator follows the link-table stream. Throws
     * std::invalid_argument when the plan fails its own check().
     */
    Session &withChainPlan(const chain::ChainPlan &plan);
    /**
     * Borrowed compile cache (src/serve): compile() and the
     * simulation backends answer repeat compiles of the same
     * (netlist, options, config) from it instead of re-running the
     * compiler pipeline. The cache must outlive the session; null
     * (the default) compiles fresh every run.
     */
    Session &withCompileCache(serve::CompileCache *cache);
    /// @}

    /** @name Accessors (used by backends) */
    /// @{
    const Netlist &netlist() const { return netlist_; }
    const std::string &name() const { return name_; }
    const std::string &label() const { return label_; }
    const std::vector<bool> &garblerBits() const { return garblerBits_; }
    const std::vector<bool> &evaluatorBits() const
    {
        return evaluatorBits_;
    }
    uint64_t seed() const { return seed_; }
    OtMode otMode() const { return otMode_; }
    const CompileOptions &compileOptions() const { return copts_; }
    const HaacConfig &config() const { return config_; }
    SimMode mode() const { return mode_; }
    bool wantOutputs() const { return wantOutputs_; }
    Role remoteRole() const { return remoteRole_; }
    const std::string &remoteEndpoint() const { return remoteEndpoint_; }
    const std::string &remoteSpec() const { return remoteSpec_; }
    uint32_t segmentTables() const { return segmentTables_; }
    uint32_t shards() const { return shards_; }
    const std::vector<std::string> &shardWorkers() const
    {
        return shardWorkers_;
    }
    serve::CompileCache *compileCache() const { return compileCache_; }
    /** The adopted chain plan, or null for ordinary sessions. */
    const chain::ChainPlan *chainPlan() const { return chainPlan_.get(); }

    /** Do the stored inputs match the circuit's input shape? */
    bool inputsMatchCircuit() const;
    /// @}

    /** @name Compile-only view (no simulation) */
    /// @{
    /** The baseline (un-reordered) HAAC program for this circuit. */
    HaacProgram assembled() const;

    struct Compiled
    {
        HaacProgram program;
        CompileStats stats;
    };

    /**
     * Assemble and run the compiler pipeline under the session's
     * options, with swwWires taken from the session's HaacConfig.
     */
    Compiled compile() const;
    /// @}

    /** @name Execution */
    /// @{
    /** Run on an explicit backend instance. */
    RunReport run(Backend &backend) const;

    /** Run on a registry backend by name ("software-gc", "haac-sim"). */
    RunReport run(const std::string &backend_name) const;

    /** Convenience: the software two-party protocol baseline. */
    RunReport runSoftwareGc() const;

    /** Convenience: the HAAC model in the session's SimMode. */
    RunReport runHaacSim() const;

    /** Convenience: the HAAC model in an explicit SimMode. */
    RunReport runHaacSim(SimMode mode) const;
    /// @}

  private:
    Netlist netlist_;
    std::string name_;
    std::string label_;
    std::vector<bool> garblerBits_;
    std::vector<bool> evaluatorBits_;
    uint64_t seed_ = 0x4841414331ull; // matches runProtocol's default
    OtMode otMode_ = OtMode::Iknp;
    CompileOptions copts_;
    HaacConfig config_;
    SimMode mode_ = SimMode::Combined;
    bool wantOutputs_ = true;
    Role remoteRole_ = Role::Evaluator;
    std::string remoteEndpoint_;
    std::string remoteSpec_;
    uint32_t segmentTables_ = 1024;
    uint32_t shards_ = 1;
    std::vector<std::string> shardWorkers_;
    serve::CompileCache *compileCache_ = nullptr;
    std::shared_ptr<const chain::ChainPlan> chainPlan_;
};

} // namespace haac

#endif // HAAC_API_SESSION_H
