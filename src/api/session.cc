#include "api/session.h"

#include <stdexcept>
#include <utility>

#include "chain/link.h"
#include "circuit/analyze.h"
#include "serve/compile_cache.h"
#include "workloads/vip.h"

namespace haac {

Session::Session(Netlist netlist, std::string name)
    : netlist_(std::move(netlist)), name_(std::move(name))
{
}

Session::Session(const Workload &workload)
    : netlist_(workload.netlist), name_(workload.name),
      garblerBits_(workload.garblerBits),
      evaluatorBits_(workload.evaluatorBits)
{
}

Session &
Session::withInputs(std::vector<bool> garbler_bits,
                    std::vector<bool> evaluator_bits)
{
    garblerBits_ = std::move(garbler_bits);
    evaluatorBits_ = std::move(evaluator_bits);
    return *this;
}

Session &
Session::withSeed(uint64_t seed)
{
    seed_ = seed;
    return *this;
}

Session &
Session::withOtMode(OtMode mode)
{
    otMode_ = mode;
    return *this;
}

Session &
Session::withCompileOptions(const CompileOptions &opts)
{
    copts_ = opts;
    return *this;
}

Session &
Session::withConfig(const HaacConfig &config)
{
    config_ = config;
    return *this;
}

Session &
Session::withMode(SimMode mode)
{
    mode_ = mode;
    return *this;
}

Session &
Session::withLabel(std::string label)
{
    label_ = std::move(label);
    return *this;
}

Session &
Session::withRemote(Role role, std::string endpoint, std::string spec)
{
    remoteRole_ = role;
    remoteEndpoint_ = std::move(endpoint);
    remoteSpec_ = std::move(spec);
    return *this;
}

Session &
Session::withSegmentTables(uint32_t tables)
{
    segmentTables_ = tables > 0 ? tables : 1;
    return *this;
}

Session &
Session::withShards(uint32_t shards,
                    std::vector<std::string> worker_endpoints)
{
    shards_ = shards > 0 ? shards : 1;
    shardWorkers_ = std::move(worker_endpoints);
    return *this;
}

Session &
Session::withOutputs(bool want)
{
    wantOutputs_ = want;
    return *this;
}

Session &
Session::withChainPlan(const chain::ChainPlan &plan)
{
    const std::string err = plan.check();
    if (!err.empty())
        throw std::invalid_argument("chain plan \"" + plan.name +
                                    "\": " + err);
    chainPlan_ = std::make_shared<const chain::ChainPlan>(plan);
    netlist_ = plan.monolithic();
    if (!plan.name.empty())
        name_ = plan.name;
    return *this;
}

Session &
Session::withCompileCache(serve::CompileCache *cache)
{
    compileCache_ = cache;
    return *this;
}

bool
Session::inputsMatchCircuit() const
{
    return garblerBits_.size() == netlist_.numGarblerInputs &&
           evaluatorBits_.size() == netlist_.numEvaluatorInputs;
}

HaacProgram
Session::assembled() const
{
    return assemble(netlist_);
}

Session::Compiled
Session::compile() const
{
    CompileOptions opts = copts_;
    opts.swwWires = config_.swwWires();

    // Pre-compile admission: the circuit-level analogue of the
    // post-compile ISA verify in compileProgram, same Debug/Release
    // contract. All analyzer error codes are structural, so the deep
    // (warning) passes are skipped here.
#ifndef NDEBUG
    const bool check = true;
#else
    const bool check = opts.verify;
#endif
    if (check) {
        CircuitLintOptions lint;
        lint.warnings = false;
        lint.deep = false;
        const CircuitLintReport rep = analyzeNetlist(netlist_, lint);
        // No assert here, unlike the mirrored check in passes.cc: that
        // one guards compiler output, this one guards user-supplied
        // netlists (e.g. readBristolFile), which must refuse by
        // throwing, not abort, in every build mode.
        if (!rep.clean())
            throw std::logic_error(
                "Session::compile: circuit analyzer rejected the "
                "netlist (" +
                rep.summary() + "): " + rep.firstError());
    }

    Compiled out;
    if (compileCache_ != nullptr) {
        const auto unit =
            compileCache_->compile(netlist_, opts, config_);
        out.program = unit->program;
        out.stats = unit->stats;
    } else {
        out.program =
            compileProgram(assemble(netlist_), opts, &out.stats);
    }
    const CircuitCost cost = circuitCost(netlist_);
    out.stats.multDepth = cost.multDepth;
    out.stats.freeXorPercent = cost.freeXorPercent;
    return out;
}

RunReport
Session::run(Backend &backend) const
{
    RunReport report = backend.execute(*this);
    report.backend = backend.name();
    report.workload = name_;
    report.label = label_;
    return report;
}

RunReport
Session::run(const std::string &backend_name) const
{
    std::unique_ptr<Backend> backend = createBackend(backend_name);
    return run(*backend);
}

RunReport
Session::runSoftwareGc() const
{
    SoftwareGcBackend backend;
    return run(backend);
}

RunReport
Session::runHaacSim() const
{
    HaacSimBackend backend;
    return run(backend);
}

RunReport
Session::runHaacSim(SimMode mode) const
{
    HaacSimBackend backend(config_, mode);
    return run(backend);
}

} // namespace haac
