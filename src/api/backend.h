/**
 * @file
 * Pluggable execution backends for haac::Session.
 *
 * A Backend is one way of running a garbled circuit: the software
 * two-party protocol on the CPU, the HAAC accelerator model, or —
 * through the registry — anything a downstream user links in (a
 * sharded multi-core sim, a remote two-machine channel, ...). The
 * Session hands the backend its circuit, inputs, and configuration;
 * the backend answers with one RunReport.
 *
 * Registry: backends self-register under a stable string name
 * ("software-gc", "haac-sim"). Session::run("name") resolves through
 * it, so new backends plug in without touching any caller.
 */
#ifndef HAAC_API_BACKEND_H
#define HAAC_API_BACKEND_H

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/run_report.h"

namespace haac {

class Session;
class Transport;

class Backend
{
  public:
    virtual ~Backend() = default;

    /** Stable identifier, echoed into RunReport::backend. */
    virtual const char *name() const = 0;

    /** Execute the session's circuit and produce a structured report. */
    virtual RunReport execute(const Session &session) = 0;
};

/**
 * The EMP-class CPU baseline: runs the real two-party protocol
 * (garble, simulated OT, channel transfer, evaluate) and reports
 * outputs plus exact communication accounting.
 */
class SoftwareGcBackend : public Backend
{
  public:
    const char *name() const override { return "software-gc"; }
    RunReport execute(const Session &session) override;
};

/**
 * The HAAC accelerator model: assemble → compile (RO/RN/ESW) →
 * generate streams → cycle-level simulation, plus the activity-driven
 * energy model. Optionally pinned to a HaacConfig / SimMode that
 * overrides whatever the Session carries (so a registry entry can
 * represent a fixed design point).
 */
class HaacSimBackend : public Backend
{
  public:
    HaacSimBackend() = default;
    explicit HaacSimBackend(HaacConfig config,
                            std::optional<SimMode> mode = std::nullopt)
        : config_(config), mode_(mode)
    {
    }

    const char *name() const override { return "haac-sim"; }
    RunReport execute(const Session &session) override;

  private:
    std::optional<HaacConfig> config_;
    std::optional<SimMode> mode_;
};

/**
 * The networked two-party runtime: this process plays one GC role
 * (Session::withRemote) and the peer — another remote-gc session, a
 * remote_millionaires process, or a haac_server — plays the other,
 * over a framed Transport. Streams garbled tables in segments, so
 * memory stays O(wires) regardless of circuit size. The report
 * carries outputs, the exact ProtocolResult-compatible communication
 * accounting measured on the wire, and the net section (raw bytes,
 * segments, gates/s).
 */
class RemoteGcBackend : public Backend
{
  public:
    /** Endpoint/role come from the Session (withRemote). */
    RemoteGcBackend() = default;

    /**
     * Run over an already-connected transport in a fixed role —
     * how tests drive both ends of a LoopbackTransport pair without
     * ports, and how callers bring their own connection.
     */
    RemoteGcBackend(std::shared_ptr<Transport> transport, Role role);

    const char *name() const override { return "remote-gc"; }
    RunReport execute(const Session &session) override;

  private:
    std::shared_ptr<Transport> transport_;
    std::optional<Role> role_;
};

/** @name Backend registry */
/// @{
using BackendFactory = std::function<std::unique_ptr<Backend>()>;

/**
 * Register a factory under @p name.
 *
 * @return false (and leaves the registry unchanged) when the name is
 *         already taken.
 */
bool registerBackend(const std::string &name, BackendFactory factory);

/**
 * Instantiate a registered backend.
 *
 * @throws std::invalid_argument listing the registered names when
 *         @p name is unknown.
 */
std::unique_ptr<Backend> createBackend(const std::string &name);

/** Registered backend names, sorted. */
std::vector<std::string> backendNames();
/// @}

} // namespace haac

#endif // HAAC_API_BACKEND_H
