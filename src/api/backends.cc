/**
 * @file
 * Built-in backends and the backend registry.
 *
 * Lives in one translation unit with the registry storage so linking
 * any registry user also links the built-in registrations (no
 * link-order surprises from per-backend static initializers).
 */
#include "api/backend.h"

#include <chrono>
#include <cstdlib>
#include <map>
#include <stdexcept>

#include "api/session.h"
#include "chain/link.h"
#include "core/compiler/streams.h"
#include "gc/protocol.h"
#include "net/server.h"
#include "net/tcp.h"
#include "platform/energy_model.h"
#include "serve/compile_cache.h"
#include "shard/backend.h"

namespace haac {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

std::map<std::string, BackendFactory> &
registry()
{
    static std::map<std::string, BackendFactory> backends;
    return backends;
}

} // namespace

RunReport
SoftwareGcBackend::execute(const Session &session)
{
    const Netlist &netlist = session.netlist();

    // Default zero inputs keep "just time/size the circuit" sessions
    // one-liners; mismatched non-empty inputs still throw below.
    std::vector<bool> gb = session.garblerBits();
    std::vector<bool> eb = session.evaluatorBits();
    if (gb.empty())
        gb.resize(netlist.numGarblerInputs, false);
    if (eb.empty())
        eb.resize(netlist.numEvaluatorInputs, false);

    RunReport report;
    const auto start = Clock::now();
    ProtocolResult res = runProtocol(netlist, gb, eb, session.seed(),
                                     session.otMode());
    report.hostSeconds = secondsSince(start);

    report.outputs = std::move(res.outputs);
    report.hasOutputs = true;
    report.comm.tableBytes = res.tableBytes;
    report.comm.inputLabelBytes = res.inputLabelBytes;
    report.comm.otBytes = res.otBytes;
    report.comm.otUplinkBytes = res.otUplinkBytes;
    report.comm.outputDecodeBytes = res.outputDecodeBytes;
    report.comm.totalBytes = res.totalBytes;
    report.hasComm = true;
    report.gates = netlist.numGates();
    report.config = session.config();
    report.mode = session.mode();
    return report;
}

RunReport
HaacSimBackend::execute(const Session &session)
{
    const HaacConfig cfg = config_ ? *config_ : session.config();
    const SimMode mode = mode_ ? *mode_ : session.mode();

    // The config is the authority on SWW capacity: the compiler must
    // target the window the simulated hardware actually has.
    CompileOptions copts = session.compileOptions();
    copts.swwWires = cfg.swwWires();

    RunReport report;
    const auto start = Clock::now();

    // Compile (+ stream build), answered from the session's
    // CompileCache when one is attached. The shared_ptr keeps a hit
    // alive for the whole run even if the cache evicts it meanwhile.
    serve::CompileCache *cache = session.compileCache();
    std::shared_ptr<const serve::CompiledUnit> unit;
    HaacProgram local_prog;
    StreamSet local_streams;
    const HaacProgram *prog = nullptr;
    const StreamSet *streams = nullptr;
    bool cache_hit = false;
    if (cache != nullptr) {
        unit = cache->compile(session.netlist(), copts, cfg,
                              &cache_hit);
        report.compile = unit->stats;
        prog = &unit->program;
        streams = &unit->streams;
    } else {
        local_prog = compileProgram(assemble(session.netlist()), copts,
                                    &report.compile);
        local_streams = buildStreams(local_prog, cfg);
        prog = &local_prog;
        streams = &local_streams;
    }

    report.sim = runSimulation(*prog, cfg, *streams, mode);
    report.hostSeconds = secondsSince(start);
    report.hasSim = true;
    report.gates = report.compile.instructions;

    report.energy = modelEnergy(cfg, report.sim);
    report.hasEnergy = true;

    if (cache != nullptr) {
        const serve::CacheStats cs = cache->stats();
        report.serve.compileCacheHit = cache_hit;
        report.serve.compileCacheHits = cs.hits;
        report.serve.compileCacheMisses = cs.misses;
        report.hasServe = true;
    }

    // The timing model computes no wire values; when the session
    // carries matching inputs (and wants outputs), interpret the
    // compiled program so the report still answers "what did the
    // circuit say". Zero-input (constant) circuits qualify too.
    if (session.wantOutputs() && session.inputsMatchCircuit()) {
        report.outputs = executePlain(*prog, session.garblerBits(),
                                      session.evaluatorBits());
        report.hasOutputs = true;
    }

    report.config = cfg;
    report.mode = mode;
    return report;
}

namespace {

/**
 * "listen:port" / "listen:host:port" accepts one connection;
 * "host:port" connects (retrying until the peer starts listening).
 */
std::unique_ptr<Transport>
openEndpoint(const std::string &endpoint)
{
    auto hostPort = [&](const std::string &s, std::string &host,
                        uint16_t &port) {
        const size_t colon = s.rfind(':');
        const std::string port_str =
            colon == std::string::npos ? s : s.substr(colon + 1);
        host = colon == std::string::npos ? "" : s.substr(0, colon);
        char *end = nullptr;
        const unsigned long v = std::strtoul(port_str.c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || v == 0 || v > 65535)
            throw std::invalid_argument(
                "remote-gc endpoint \"" + endpoint +
                "\": bad port \"" + port_str + "\"");
        port = uint16_t(v);
    };

    std::string host;
    uint16_t port = 0;
    if (endpoint.rfind("listen:", 0) == 0) {
        hostPort(endpoint.substr(7), host, port);
        TcpListener listener(port, host.empty() ? "0.0.0.0" : host);
        return listener.accept();
    }
    hostPort(endpoint, host, port);
    if (host.empty())
        host = "127.0.0.1";
    return TcpTransport::connect(host, port);
}

} // namespace

RemoteGcBackend::RemoteGcBackend(std::shared_ptr<Transport> transport,
                                 Role role)
    : transport_(std::move(transport)), role_(role)
{
}

RunReport
RemoteGcBackend::execute(const Session &session)
{
    const Role role = role_ ? *role_ : session.remoteRole();

    std::unique_ptr<Transport> owned;
    Transport *transport = transport_.get();
    if (!transport) {
        if (session.remoteEndpoint().empty())
            throw std::invalid_argument(
                "remote-gc: no transport and no endpoint; configure "
                "Session::withRemote(role, endpoint)");
        owned = openEndpoint(session.remoteEndpoint());
        transport = owned.get();
    }

    clientHello(*transport,
                role == Role::Garbler ? PeerRole::Garbler
                                      : PeerRole::Evaluator,
                session.remoteSpec());

    RemoteOptions ropts;
    ropts.segmentTables = session.segmentTables();
    ropts.otMode = session.otMode();

    // A session carrying a chain plan runs the chained protocol
    // instead of garbling/evaluating its (monolithic) netlist.
    if (const chain::ChainPlan *plan = session.chainPlan()) {
        chain::ChainResult result;
        if (role == Role::Garbler) {
            std::vector<bool> bits = session.garblerBits();
            if (bits.empty())
                bits.resize(plan->garblerInputs, false);
            result = chain::runChainGarbler(*plan, bits, *transport,
                                            session.seed(), ropts);
        } else {
            std::vector<bool> bits = session.evaluatorBits();
            if (bits.empty())
                bits.resize(plan->evaluatorInputs, false);
            result = chain::runChainEvaluator(*plan, bits, *transport,
                                              ropts);
        }
        RunReport report = makeChainReport(result, role, *transport);
        report.config = session.config();
        report.mode = session.mode();
        return report;
    }

    const Netlist &netlist = session.netlist();
    RemoteResult result;
    if (role == Role::Garbler) {
        std::vector<bool> bits = session.garblerBits();
        if (bits.empty())
            bits.resize(netlist.numGarblerInputs, false);
        result = runRemoteGarbler(netlist, bits, *transport,
                                  session.seed(), ropts);
    } else {
        std::vector<bool> bits = session.evaluatorBits();
        if (bits.empty())
            bits.resize(netlist.numEvaluatorInputs, false);
        result = runRemoteEvaluator(netlist, bits, *transport, ropts);
    }

    RunReport report = makeRemoteReport(result, role, *transport);
    report.config = session.config();
    report.mode = session.mode();
    return report;
}

bool
registerBackend(const std::string &name, BackendFactory factory)
{
    if (!factory || registry().count(name))
        return false;
    registry()[name] = std::move(factory);
    return true;
}

std::unique_ptr<Backend>
createBackend(const std::string &name)
{
    auto it = registry().find(name);
    if (it == registry().end()) {
        std::string known;
        for (const auto &[n, f] : registry())
            known += (known.empty() ? "" : ", ") + n;
        throw std::invalid_argument("unknown backend \"" + name +
                                    "\" (registered: " + known + ")");
    }
    return it->second();
}

std::vector<std::string>
backendNames()
{
    std::vector<std::string> names;
    for (const auto &[name, factory] : registry())
        names.push_back(name);
    return names; // std::map iteration is already sorted
}

namespace {

const bool kBuiltinsRegistered = [] {
    registerBackend("software-gc", [] {
        return std::unique_ptr<Backend>(new SoftwareGcBackend());
    });
    registerBackend("haac-sim", [] {
        return std::unique_ptr<Backend>(new HaacSimBackend());
    });
    registerBackend("remote-gc", [] {
        return std::unique_ptr<Backend>(new RemoteGcBackend());
    });
    registerBackend("haac-sim-sharded", [] {
        return std::unique_ptr<Backend>(new ShardedSimBackend());
    });
    return true;
}();

} // namespace

} // namespace haac
