/**
 * @file
 * The Half-Gate label hash H(x, j).
 *
 * HAAC uses the *re-keying* construction for security (Guo et al.,
 * CRYPTO'20): each hash call expands an AES key derived from the gate
 * tweak j (j = 2*gate_index or 2*gate_index+1) and computes a
 * Matyas-Meyer-Oseas compression, H(x, j) = AES_{k(j)}(x) ^ x. An AND
 * gate therefore costs the Garbler two key expansions and four AES
 * block encryptions, exactly the datapath in Fig. 2 of the paper.
 *
 * The cheaper but less secure *fixed-key* construction (one global key,
 * tweak folded into the input) is provided only to reproduce the
 * paper's measured 27.5% re-keying overhead.
 */
#ifndef HAAC_CRYPTO_HASH_H
#define HAAC_CRYPTO_HASH_H

#include <cstdint>

#include "crypto/aes128.h"
#include "crypto/label.h"

namespace haac {

/** Derive the AES key for tweak j (both halves carry j, domain-tagged). */
Label tweakKey(uint64_t tweak);

/**
 * Re-keyed Half-Gate hash: expand k(j), then MMO-compress x.
 *
 * This is the per-call form; when a gate hashes two labels under the
 * same tweak, use RekeyedHasher to share the expansion within the gate
 * (the hardware expands once per tweak, Fig. 2).
 */
Label hashRekeyed(const Label &x, uint64_t tweak);

/** One expanded tweak key, reusable for the hashes sharing that tweak. */
class RekeyedHasher
{
  public:
    explicit RekeyedHasher(uint64_t tweak) : aes_(tweakKey(tweak)) {}

    Label
    operator()(const Label &x) const
    {
        return aes_.encryptBlock(x) ^ x;
    }

  private:
    Aes128 aes_;
};

/**
 * Fixed-key hash: H(x, j) = AES_K(sigma(x) ^ j) ^ sigma(x) ^ j, where
 * sigma doubles the label halves to break XOR-linearity. Ablation only.
 */
class FixedKeyHasher
{
  public:
    FixedKeyHasher();

    Label operator()(const Label &x, uint64_t tweak) const;

  private:
    Aes128 aes_;
};

} // namespace haac

#endif // HAAC_CRYPTO_HASH_H
