#include "crypto/hash.h"

namespace haac {

Label
tweakKey(uint64_t tweak)
{
    // Domain-separate the key space from PRG counters.
    return Label(tweak, tweak ^ 0x4841414354574b00ull); // "HAACTWK"
}

Label
hashRekeyed(const Label &x, uint64_t tweak)
{
    Aes128 aes(tweakKey(tweak));
    return aes.encryptBlock(x) ^ x;
}

namespace {

Label
fixedGlobalKey()
{
    return Label(0x7061706572484141ull, 0x4341534963613233ull);
}

/** sigma(x): swap-and-double linear orthomorphism (EMP-style). */
Label
sigma(const Label &x)
{
    return Label(x.hi ^ x.lo, x.hi);
}

} // namespace

FixedKeyHasher::FixedKeyHasher() : aes_(fixedGlobalKey()) {}

Label
FixedKeyHasher::operator()(const Label &x, uint64_t tweak) const
{
    Label t = sigma(x) ^ Label(tweak, 0);
    return aes_.encryptBlock(t) ^ t;
}

} // namespace haac
