#include "crypto/gf128.h"

namespace haac {

Label
gf128Mul(const Label &a, const Label &b)
{
    uint64_t alo = a.lo, ahi = a.hi;
    uint64_t rlo = 0, rhi = 0;
    for (int i = 0; i < 128; ++i) {
        const bool bit =
            ((i < 64 ? b.lo >> i : b.hi >> (i - 64)) & 1) != 0;
        if (bit) {
            rlo ^= alo;
            rhi ^= ahi;
        }
        // a <<= 1 (mod the field polynomial): the x^128 overflow bit
        // folds back in as x^7 + x^2 + x + 1 = 0x87.
        const bool carry = (ahi >> 63) != 0;
        ahi = (ahi << 1) | (alo >> 63);
        alo <<= 1;
        if (carry)
            alo ^= 0x87;
    }
    return Label(rlo, rhi);
}

} // namespace haac
