#include "crypto/prg.h"

#include <cstring>
#include <random>

namespace haac {

namespace {

uint64_t
mix(uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

Label
seedToKey(uint64_t seed)
{
    // Spread the seed across the key with distinct mixing constants
    // (splitmix64 finalizer) so nearby seeds give unrelated keys.
    uint64_t lo = mix(seed + 0x9e3779b97f4a7c15ull);
    uint64_t hi = mix(seed + 0x7f4a7c15'9e3779b9ull);
    return Label(lo, hi);
}

} // namespace

uint64_t
splitmix64(uint64_t x)
{
    return mix(x + 0x9e3779b97f4a7c15ull);
}

uint64_t
randomSeed()
{
    std::random_device rd;
    return (uint64_t(rd()) << 32) ^ rd();
}

Prg::Prg(uint64_t seed) : aes_(seedToKey(seed)) {}

Prg::Prg(const Label &key) : aes_(key) {}

void
Prg::nextBytes(uint8_t *out, size_t n)
{
    while (n >= kLabelBytes) {
        nextLabel().toBytes(out);
        out += kLabelBytes;
        n -= kLabelBytes;
    }
    if (n > 0) {
        uint8_t block[kLabelBytes];
        nextLabel().toBytes(block);
        std::memcpy(out, block, n);
    }
}

Label
Prg::nextLabel()
{
    Label ctr(counter_++, 0x484141435f505247ull); // "HAAC_PRG" tag
    return aes_.encryptBlock(ctr);
}

uint64_t
Prg::nextU64()
{
    if (haveSpareHalf_) {
        haveSpareHalf_ = false;
        return spare_.hi;
    }
    spare_ = nextLabel();
    haveSpareHalf_ = true;
    return spare_.lo;
}

uint64_t
Prg::nextRange(uint64_t bound)
{
    // Rejection sampling to avoid modulo bias.
    uint64_t limit = bound * (~uint64_t(0) / bound);
    uint64_t v;
    do {
        v = nextU64();
    } while (v >= limit);
    return v % bound;
}

} // namespace haac
