#include "crypto/bitmatrix.h"

#include <cstring>

namespace haac {

void
transpose64(uint64_t m[64])
{
    // Butterfly exchange (Hacker's Delight 7-3), mirrored for the
    // LSB-first bit convention: swap the 2^j x 2^j off-diagonal
    // blocks at every scale.
    uint64_t mask = 0x00000000ffffffffull;
    for (int j = 32; j != 0; j >>= 1, mask ^= mask << j) {
        for (int k = 0; k < 64; k = (k + j + 1) & ~j) {
            const uint64_t t = ((m[k] >> j) ^ m[k + j]) & mask;
            m[k] ^= t << j;
            m[k + j] ^= t;
        }
    }
}

void
transpose128Block(const uint8_t *cols, size_t col_stride,
                  Label rows[128])
{
    // Four 64 x 64 quadrants: (column half a, row half b).
    uint64_t q[64];
    for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
            for (int i = 0; i < 64; ++i)
                std::memcpy(&q[i],
                            cols + size_t(64 * a + i) * col_stride +
                                8 * b,
                            8);
            transpose64(q);
            for (int j = 0; j < 64; ++j) {
                Label &row = rows[64 * b + j];
                if (a == 0)
                    row.lo = q[j];
                else
                    row.hi = q[j];
            }
        }
    }
}

} // namespace haac
