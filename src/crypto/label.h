/**
 * @file
 * 128-bit wire labels, the fundamental GC data type.
 *
 * A wire's value under garbling is one of two 128-bit labels; the label
 * for logical 1 is the label for logical 0 XORed with the global FreeXOR
 * offset R (whose least-significant bit is always 1, so lsb(label) acts
 * as the point-and-permute select bit).
 */
#ifndef HAAC_CRYPTO_LABEL_H
#define HAAC_CRYPTO_LABEL_H

#include <array>
#include <cstdint>
#include <cstring>
#include <string>

namespace haac {

/** A 128-bit block: wire label, ciphertext, or AES state. */
struct Label
{
    uint64_t lo = 0;
    uint64_t hi = 0;

    constexpr Label() = default;
    constexpr Label(uint64_t lo_, uint64_t hi_) : lo(lo_), hi(hi_) {}

    /** Point-and-permute select bit. */
    constexpr bool lsb() const { return (lo & 1u) != 0; }

    /** Force the select bit to @p b, leaving other bits untouched. */
    constexpr void
    setLsb(bool b)
    {
        lo = (lo & ~uint64_t(1)) | uint64_t(b ? 1 : 0);
    }

    constexpr bool isZero() const { return lo == 0 && hi == 0; }

    friend constexpr Label
    operator^(const Label &a, const Label &b)
    {
        return Label(a.lo ^ b.lo, a.hi ^ b.hi);
    }

    constexpr Label &
    operator^=(const Label &o)
    {
        lo ^= o.lo;
        hi ^= o.hi;
        return *this;
    }

    friend constexpr bool
    operator==(const Label &a, const Label &b)
    {
        return a.lo == b.lo && a.hi == b.hi;
    }

    friend constexpr bool
    operator!=(const Label &a, const Label &b)
    {
        return !(a == b);
    }

    /** Serialize little-endian (lo first) into 16 bytes. */
    void
    toBytes(uint8_t out[16]) const
    {
        std::memcpy(out, &lo, 8);
        std::memcpy(out + 8, &hi, 8);
    }

    static Label
    fromBytes(const uint8_t in[16])
    {
        Label l;
        std::memcpy(&l.lo, in, 8);
        std::memcpy(&l.hi, in + 8, 8);
        return l;
    }

    /** Hex string (32 nibbles, hi first) for debugging and goldens. */
    std::string
    toHex() const
    {
        static const char digits[] = "0123456789abcdef";
        std::string s(32, '0');
        for (int i = 0; i < 16; ++i) {
            uint64_t word = i < 8 ? hi : lo;
            int shift = 56 - 8 * (i % 8);
            uint8_t byte = uint8_t(word >> shift);
            s[2 * i] = digits[byte >> 4];
            s[2 * i + 1] = digits[byte & 0xf];
        }
        return s;
    }
};

/** Bytes in one wire label; drives SWW sizing and traffic accounting. */
inline constexpr size_t kLabelBytes = 16;

/** Bytes per garbled AND table: two ciphertexts (the paper's 32 B). */
inline constexpr size_t kTableBytes = 2 * kLabelBytes;

/** A Half-Gate garbled table: generator-half and evaluator-half rows. */
struct GarbledTable
{
    Label tg;
    Label te;

    friend constexpr bool
    operator==(const GarbledTable &a, const GarbledTable &b)
    {
        return a.tg == b.tg && a.te == b.te;
    }
};

} // namespace haac

#endif // HAAC_CRYPTO_LABEL_H
