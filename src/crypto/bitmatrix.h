/**
 * @file
 * Bit-matrix transpose for the IKNP OT extension.
 *
 * The extension's receiver generates its correlation matrix column by
 * column (one PRG stream per base OT) but both parties hash it row by
 * row (one 128-bit row per extended OT). The pivot between the two
 * views is a 128 x 128 bit transpose, done 64 x 64 words at a time
 * with the butterfly-exchange algorithm, so a batch of m OTs costs
 * O(m log 128) word operations instead of O(128 m) bit probes.
 */
#ifndef HAAC_CRYPTO_BITMATRIX_H
#define HAAC_CRYPTO_BITMATRIX_H

#include <cstddef>
#include <cstdint>

#include "crypto/label.h"

namespace haac {

/**
 * In-place 64 x 64 bit transpose.
 *
 * Convention: entry (r, c) is bit c (LSB-first) of word r; on return
 * bit c of word r holds the old bit r of word c.
 */
void transpose64(uint64_t m[64]);

/**
 * Transpose one 128-row block of a column-major 128-column bit matrix.
 *
 * @param cols column-major storage: column i starts at
 *        cols + i * col_stride; entry (r, i) is bit r (LSB-first,
 *        counted from the start of the block) of that column.
 * @param col_stride bytes between consecutive columns.
 * @param rows receives 128 row Labels; bit i of rows[r] is entry (r, i).
 */
void transpose128Block(const uint8_t *cols, size_t col_stride,
                       Label rows[128]);

} // namespace haac

#endif // HAAC_CRYPTO_BITMATRIX_H
