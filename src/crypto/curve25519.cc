#include "crypto/curve25519.h"

#include <cstring>

namespace haac {
namespace ec {

namespace {

using u64 = uint64_t;
using u128 = unsigned __int128;

constexpr u64 kMask51 = (u64(1) << 51) - 1;

// Curve constants as 51-bit limbs; tests/test_crypto.cc cross-checks
// the compressed base point against the RFC 8032 value.
constexpr u64 kD[5] = {0x34dca135978a3ull, 0x1a8283b156ebdull,
                       0x5e7a26001c029ull, 0x739c663a03cbbull,
                       0x52036cee2b6ffull};
constexpr u64 kD2[5] = {0x69b9426b2f159ull, 0x35050762add7aull,
                        0x3cf44c0038052ull, 0x6738cc7407977ull,
                        0x2406d9dc56dffull};
constexpr u64 kSqrtM1[5] = {0x61b274a0ea0b0ull, 0x0d5a5fc8f189dull,
                            0x7ef5e9cbd0c60ull, 0x78595a6804c9eull,
                            0x2b8324804fc1dull};
constexpr u64 kBaseX[5] = {0x62d608f25d51aull, 0x412a4b4f6592aull,
                           0x75b7171a4b31dull, 0x1ff60527118feull,
                           0x216936d3cd6e5ull};
constexpr u64 kBaseY[5] = {0x6666666666658ull, 0x4ccccccccccccull,
                           0x1999999999999ull, 0x3333333333333ull,
                           0x6666666666666ull};
constexpr u64 kBaseT[5] = {0x68ab3a5b7dda3ull, 0x00eea2a5eadbbull,
                           0x2af8df483c27eull, 0x332b375274732ull,
                           0x67875f0fd78b7ull};

void
feZero(u64 out[5])
{
    out[0] = out[1] = out[2] = out[3] = out[4] = 0;
}

void
feOne(u64 out[5])
{
    out[0] = 1;
    out[1] = out[2] = out[3] = out[4] = 0;
}

void
feCopy(u64 out[5], const u64 a[5])
{
    std::memcpy(out, a, 5 * sizeof(u64));
}

void
feAdd(u64 out[5], const u64 a[5], const u64 b[5])
{
    for (int i = 0; i < 5; ++i)
        out[i] = a[i] + b[i];
}

/** out = a - b, with a 2p bias so limbs never underflow. */
void
feSub(u64 out[5], const u64 a[5], const u64 b[5])
{
    // 2p in radix-51: limb0 = 2^52-38, limbs 1..4 = 2^52-2.
    out[0] = a[0] + 0xfffffffffffdaull - b[0];
    out[1] = a[1] + 0xffffffffffffeull - b[1];
    out[2] = a[2] + 0xffffffffffffeull - b[2];
    out[3] = a[3] + 0xffffffffffffeull - b[3];
    out[4] = a[4] + 0xffffffffffffeull - b[4];
}

/** Carry limbs back under 2^51 (+epsilon); keeps values loosely reduced. */
void
feCarry(u64 a[5])
{
    u64 c;
    c = a[0] >> 51; a[0] &= kMask51; a[1] += c;
    c = a[1] >> 51; a[1] &= kMask51; a[2] += c;
    c = a[2] >> 51; a[2] &= kMask51; a[3] += c;
    c = a[3] >> 51; a[3] &= kMask51; a[4] += c;
    c = a[4] >> 51; a[4] &= kMask51; a[0] += 19 * c;
    c = a[0] >> 51; a[0] &= kMask51; a[1] += c;
}

void
feMul(u64 out[5], const u64 a[5], const u64 b[5])
{
    const u128 a0 = a[0], a1 = a[1], a2 = a[2], a3 = a[3], a4 = a[4];
    const u64 b0 = b[0], b1 = b[1], b2 = b[2], b3 = b[3], b4 = b[4];
    // 19-fold the limb products that wrap past 2^255.
    const u64 b1_19 = 19 * b1, b2_19 = 19 * b2, b3_19 = 19 * b3,
              b4_19 = 19 * b4;

    u128 r0 = a0 * b0 + a1 * b4_19 + a2 * b3_19 + a3 * b2_19 + a4 * b1_19;
    u128 r1 = a0 * b1 + a1 * b0 + a2 * b4_19 + a3 * b3_19 + a4 * b2_19;
    u128 r2 = a0 * b2 + a1 * b1 + a2 * b0 + a3 * b4_19 + a4 * b3_19;
    u128 r3 = a0 * b3 + a1 * b2 + a2 * b1 + a3 * b0 + a4 * b4_19;
    u128 r4 = a0 * b4 + a1 * b3 + a2 * b2 + a3 * b1 + a4 * b0;

    u64 c;
    u64 t0 = u64(r0) & kMask51; c = u64(r0 >> 51);
    r1 += c;
    u64 t1 = u64(r1) & kMask51; c = u64(r1 >> 51);
    r2 += c;
    u64 t2 = u64(r2) & kMask51; c = u64(r2 >> 51);
    r3 += c;
    u64 t3 = u64(r3) & kMask51; c = u64(r3 >> 51);
    r4 += c;
    u64 t4 = u64(r4) & kMask51; c = u64(r4 >> 51);
    t0 += 19 * c;
    c = t0 >> 51; t0 &= kMask51;
    t1 += c;

    out[0] = t0; out[1] = t1; out[2] = t2; out[3] = t3; out[4] = t4;
}

void
feSq(u64 out[5], const u64 a[5])
{
    feMul(out, a, a);
}

/** out = a^(2^count) by repeated squaring. */
void
feSqN(u64 out[5], const u64 a[5], int count)
{
    feCopy(out, a);
    for (int i = 0; i < count; ++i)
        feSq(out, out);
}

/** Shared prefix of the inversion/sqrt chains: a^(2^250 - 1). */
void
fePow250m1(u64 out[5], const u64 a[5], u64 *t0_out /* a^11 */)
{
    u64 t0[5], t1[5], t2[5], t3[5];
    feSq(t0, a);                  // 2
    feSq(t1, t0);
    feSq(t1, t1);                 // 8
    feMul(t1, a, t1);             // 9
    feMul(t0, t0, t1);            // 11
    feSq(t2, t0);                 // 22
    feMul(t1, t1, t2);            // 31 = 2^5 - 1
    feSqN(t2, t1, 5);             // 2^10 - 2^5
    feMul(t1, t2, t1);            // 2^10 - 1
    feSqN(t2, t1, 10);            // 2^20 - 2^10
    feMul(t2, t2, t1);            // 2^20 - 1
    feSqN(t3, t2, 20);            // 2^40 - 2^20
    feMul(t2, t3, t2);            // 2^40 - 1
    feSqN(t2, t2, 10);            // 2^50 - 2^10
    feMul(t1, t2, t1);            // 2^50 - 1
    feSqN(t2, t1, 50);            // 2^100 - 2^50
    feMul(t2, t2, t1);            // 2^100 - 1
    feSqN(t3, t2, 100);           // 2^200 - 2^100
    feMul(t2, t3, t2);            // 2^200 - 1
    feSqN(t2, t2, 50);            // 2^250 - 2^50
    feMul(out, t2, t1);           // 2^250 - 1
    if (t0_out)
        feCopy(t0_out, t0);
}

/** out = a^(p-2) = a^-1 (Fermat). */
void
feInvert(u64 out[5], const u64 a[5])
{
    u64 t0[5], t1[5];
    fePow250m1(t1, a, t0);        // a^(2^250-1), t0 = a^11
    feSqN(t1, t1, 5);             // 2^255 - 2^5
    feMul(out, t1, t0);           // 2^255 - 21 = p - 2
}

/** out = a^((p-5)/8) = a^(2^252 - 3), the decompression root helper. */
void
fePow22523(u64 out[5], const u64 a[5])
{
    u64 t1[5];
    fePow250m1(t1, a, nullptr);   // 2^250 - 1
    feSqN(t1, t1, 2);             // 2^252 - 4
    feMul(out, t1, a);            // 2^252 - 3
}

/** Canonical little-endian serialization (fully reduced mod p). */
void
feToBytes(uint8_t out[32], const u64 in[5])
{
    u64 t[5];
    feCopy(t, in);
    feCarry(t);
    feCarry(t);
    // q = 1 iff t >= p; then t mod p = low 255 bits of t + 19q.
    u64 q = (t[0] + 19) >> 51;
    q = (t[1] + q) >> 51;
    q = (t[2] + q) >> 51;
    q = (t[3] + q) >> 51;
    q = (t[4] + q) >> 51;
    t[0] += 19 * q;
    u64 c;
    c = t[0] >> 51; t[0] &= kMask51; t[1] += c;
    c = t[1] >> 51; t[1] &= kMask51; t[2] += c;
    c = t[2] >> 51; t[2] &= kMask51; t[3] += c;
    c = t[3] >> 51; t[3] &= kMask51; t[4] += c;
    t[4] &= kMask51; // drop the 2^255 wrap

    const u64 lo0 = t[0] | (t[1] << 51);
    const u64 lo1 = (t[1] >> 13) | (t[2] << 38);
    const u64 lo2 = (t[2] >> 26) | (t[3] << 25);
    const u64 lo3 = (t[3] >> 39) | (t[4] << 12);
    std::memcpy(out, &lo0, 8);
    std::memcpy(out + 8, &lo1, 8);
    std::memcpy(out + 16, &lo2, 8);
    std::memcpy(out + 24, &lo3, 8);
}

void
feFromBytes(u64 out[5], const uint8_t in[32])
{
    u64 w0, w1, w2, w3;
    std::memcpy(&w0, in, 8);
    std::memcpy(&w1, in + 8, 8);
    std::memcpy(&w2, in + 16, 8);
    std::memcpy(&w3, in + 24, 8);
    out[0] = w0 & kMask51;
    out[1] = ((w0 >> 51) | (w1 << 13)) & kMask51;
    out[2] = ((w1 >> 38) | (w2 << 26)) & kMask51;
    out[3] = ((w2 >> 25) | (w3 << 39)) & kMask51;
    out[4] = (w3 >> 12) & kMask51; // bit 255 (the sign bit) dropped
}

bool
feIsZero(const u64 a[5])
{
    uint8_t bytes[32];
    feToBytes(bytes, a);
    uint8_t acc = 0;
    for (int i = 0; i < 32; ++i)
        acc |= bytes[i];
    return acc == 0;
}

bool
feIsNegative(const u64 a[5])
{
    uint8_t bytes[32];
    feToBytes(bytes, a);
    return (bytes[0] & 1) != 0;
}

void
feNeg(u64 out[5], const u64 a[5])
{
    u64 zero[5];
    feZero(zero);
    feSub(out, zero, a);
    feCarry(out);
}

} // namespace

Scalar
randomScalar(Prg &rng)
{
    Scalar s;
    const Label a = rng.nextLabel();
    const Label b = rng.nextLabel();
    a.toBytes(s.bytes);
    b.toBytes(s.bytes + 16);
    s.bytes[31] &= 0x7f; // < 2^255
    return s;
}

Point::Point()
{
    feZero(X_.v);
    feOne(Y_.v);
    feOne(Z_.v);
    feZero(T_.v);
}

const Point &
Point::base()
{
    static const Point b = [] {
        Point p;
        feCopy(p.X_.v, kBaseX);
        feCopy(p.Y_.v, kBaseY);
        feOne(p.Z_.v);
        feCopy(p.T_.v, kBaseT);
        return p;
    }();
    return b;
}

Point
Point::add(const Point &o) const
{
    // Complete extended-coordinate addition (RFC 8032 §5.1.4).
    Point r;
    u64 a[5], b[5], c[5], d[5], e[5], f[5], g[5], h[5], t[5];
    feSub(a, Y_.v, X_.v);
    feCarry(a);
    feSub(t, o.Y_.v, o.X_.v);
    feCarry(t);
    feMul(a, a, t);               // A = (Y1-X1)(Y2-X2)
    feAdd(b, Y_.v, X_.v);
    feAdd(t, o.Y_.v, o.X_.v);
    feMul(b, b, t);               // B = (Y1+X1)(Y2+X2)
    feMul(c, T_.v, kD2);
    feMul(c, c, o.T_.v);          // C = 2d T1 T2
    feMul(d, Z_.v, o.Z_.v);
    feAdd(d, d, d);               // D = 2 Z1 Z2
    feSub(e, b, a);
    feCarry(e);                   // E = B - A
    feSub(f, d, c);
    feCarry(f);                   // F = D - C
    feAdd(g, d, c);               // G = D + C
    feAdd(h, b, a);               // H = B + A
    feMul(r.X_.v, e, f);
    feMul(r.Y_.v, g, h);
    feMul(r.T_.v, e, h);
    feMul(r.Z_.v, f, g);
    return r;
}

Point
Point::sub(const Point &o) const
{
    Point neg = o;
    feNeg(neg.X_.v, o.X_.v);
    feNeg(neg.T_.v, o.T_.v);
    return add(neg);
}

Point
Point::dbl() const
{
    // RFC 8032 §5.1.4 doubling.
    Point r;
    u64 a[5], b[5], c[5], e[5], f[5], g[5], h[5], t[5];
    feSq(a, X_.v);                // A = X1^2
    feSq(b, Y_.v);                // B = Y1^2
    feSq(c, Z_.v);
    feAdd(c, c, c);               // C = 2 Z1^2
    feAdd(h, a, b);               // H = A + B
    feAdd(t, X_.v, Y_.v);
    feCarry(t);
    feSq(t, t);
    feSub(e, h, t);
    feCarry(e);                   // E = H - (X1+Y1)^2
    feSub(g, a, b);
    feCarry(g);                   // G = A - B
    feAdd(f, c, g);               // F = C + G
    feMul(r.X_.v, e, f);
    feMul(r.Y_.v, g, h);
    feMul(r.T_.v, e, h);
    feMul(r.Z_.v, f, g);
    return r;
}

Point
Point::mul(const Scalar &k, const Point &p)
{
    Point r;
    bool started = false;
    for (int bit = 255; bit >= 0; --bit) {
        if (started)
            r = r.dbl();
        if ((k.bytes[bit / 8] >> (bit % 8)) & 1) {
            r = started ? r.add(p) : p;
            started = true;
        }
    }
    return r;
}

void
Point::toBytes(uint8_t out[kPointBytes]) const
{
    u64 zinv[5], x[5], y[5];
    feInvert(zinv, Z_.v);
    feMul(x, X_.v, zinv);
    feMul(y, Y_.v, zinv);
    feToBytes(out, y);
    out[31] |= uint8_t(feIsNegative(x) ? 0x80 : 0);
}

bool
Point::fromBytes(const uint8_t in[kPointBytes], Point &out)
{
    u64 y[5], y2[5], u[5], v[5], x[5], t[5], check[5], one[5];
    feFromBytes(y, in);
    const bool sign = (in[31] & 0x80) != 0;

    feSq(y2, y);
    feOne(one);
    feSub(u, y2, one);
    feCarry(u);                   // u = y^2 - 1
    feMul(v, y2, kD);
    feAdd(v, v, one);
    feCarry(v);                   // v = d y^2 + 1

    // Candidate root x = u v^3 (u v^7)^((p-5)/8)  (RFC 8032 §5.1.3).
    u64 v3[5], v7[5];
    feSq(v3, v);
    feMul(v3, v3, v);             // v^3
    feSq(v7, v3);
    feMul(v7, v7, v);             // v^7
    feMul(t, u, v7);
    fePow22523(t, t);
    feMul(x, u, v3);
    feMul(x, x, t);

    feSq(check, x);
    feMul(check, check, v);       // v x^2
    u64 diff[5], sum[5];
    feSub(diff, check, u);
    feCarry(diff);
    feAdd(sum, check, u);
    feCarry(sum);
    if (!feIsZero(diff)) {
        if (!feIsZero(sum))
            return false;         // not a square: not on the curve
        feMul(x, x, kSqrtM1);
    }

    if (feIsZero(x) && sign)
        return false;             // -0 is not canonical
    if (feIsNegative(x) != sign)
        feNeg(x, x);

    feCopy(out.X_.v, x);
    feCopy(out.Y_.v, y);
    feOne(out.Z_.v);
    feMul(out.T_.v, x, y);
    return true;
}

bool
Point::equals(const Point &o) const
{
    uint8_t a[kPointBytes], b[kPointBytes];
    toBytes(a);
    o.toBytes(b);
    return std::memcmp(a, b, kPointBytes) == 0;
}

bool
Point::isIdentity() const
{
    return equals(Point());
}

} // namespace ec
} // namespace haac
