/**
 * @file
 * Deterministic pseudorandom generator for label generation.
 *
 * The Garbler draws the global offset R and all fresh wire labels from a
 * PRG. We use AES-128 in counter mode keyed by a seed, which keeps the
 * whole pipeline deterministic (same seed => same garbling), a property
 * the test suite leans on heavily.
 */
#ifndef HAAC_CRYPTO_PRG_H
#define HAAC_CRYPTO_PRG_H

#include <cstddef>
#include <cstdint>

#include "crypto/aes128.h"
#include "crypto/label.h"

namespace haac {

/**
 * SplitMix64 finalizer: a cheap bijective mix for deriving unrelated
 * seeds from related ones (never maps distinct inputs together, so no
 * derived-seed collision can collapse two streams).
 */
uint64_t splitmix64(uint64_t x);

/**
 * A fresh, non-deterministic 64-bit seed from the OS entropy source.
 *
 * The networked protocol draws its on-wire OT randomness here so a
 * peer can never reconstruct it from other protocol values (the
 * simulated-OT seed-leak fix); deterministic test paths keep passing
 * explicit seeds instead.
 */
uint64_t randomSeed();

/** AES-CTR pseudorandom label stream. */
class Prg
{
  public:
    /** Seed the stream; two Prgs with equal seeds emit equal streams. */
    explicit Prg(uint64_t seed);

    /**
     * Key the stream with a full 128-bit key (the OT extension seeds
     * its column streams with base-OT output keys).
     */
    explicit Prg(const Label &key);

    /** Fill @p n bytes of pseudorandom output. */
    void nextBytes(uint8_t *out, size_t n);

    /** Next 128 pseudorandom bits. */
    Label nextLabel();

    /** Next 64 pseudorandom bits. */
    uint64_t nextU64();

    /** Uniform integer in [0, bound). @pre bound > 0. */
    uint64_t nextRange(uint64_t bound);

    /** Uniform bit. */
    bool nextBit() { return (nextU64() & 1) != 0; }

  private:
    Aes128 aes_;
    uint64_t counter_ = 0;
    Label spare_;
    bool haveSpareHalf_ = false;
};

} // namespace haac

#endif // HAAC_CRYPTO_PRG_H
