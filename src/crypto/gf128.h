/**
 * @file
 * GF(2^128) multiplication for the KOS15 OT consistency check.
 *
 * The field is GF(2)[x] / (x^128 + x^7 + x^2 + x + 1) — the standard
 * carryless-multiplication modulus — with a Label's bit i (bit i of
 * lo for i < 64, of hi above) as the coefficient of x^i. The OT
 * extension uses products chi_j * t_j purely as a universal hash over
 * the receiver's correlation rows (gc/ot_ext.cc), so the bit-serial
 * shift-and-add here is plenty: one multiply per extended OT row,
 * amortized against 32 bytes of wire traffic each.
 */
#ifndef HAAC_CRYPTO_GF128_H
#define HAAC_CRYPTO_GF128_H

#include "crypto/label.h"

namespace haac {

/** a * b in GF(2^128), modulus x^128 + x^7 + x^2 + x + 1. */
Label gf128Mul(const Label &a, const Label &b);

} // namespace haac

#endif // HAAC_CRYPTO_GF128_H
