/**
 * @file
 * In-repo Curve25519 group arithmetic for the base oblivious transfers.
 *
 * The real-OT layer (gc/base_ot.h) needs a Diffie-Hellman group with
 * full point addition — the Chou-Orlandi construction blinds the
 * receiver's key as R = c*A + x*G — so this implements the twisted
 * Edwards form of Curve25519 (the Ed25519 group of RFC 8032): field
 * arithmetic mod 2^255-19 in five 51-bit limbs on unsigned __int128,
 * complete extended-coordinate addition, double-and-add scalar
 * multiplication, and RFC 8032 point compression/decompression.
 *
 * Deliberately small: encryption-only GC needs no signatures, no
 * constant-time hardening beyond the arithmetic being branch-free on
 * secret limbs (the repo models a semi-honest deployment; see
 * DESIGN.md), and no external library.
 */
#ifndef HAAC_CRYPTO_CURVE25519_H
#define HAAC_CRYPTO_CURVE25519_H

#include <cstdint>

#include "crypto/prg.h"

namespace haac {
namespace ec {

/** Serialized (compressed) point and scalar size in bytes. */
inline constexpr size_t kPointBytes = 32;
inline constexpr size_t kScalarBytes = 32;

/** A scalar multiplier, little-endian; any 256-bit value is usable. */
struct Scalar
{
    uint8_t bytes[kScalarBytes] = {};
};

/** Draw a uniform 255-bit scalar from @p rng. */
Scalar randomScalar(Prg &rng);

/** An Ed25519 group element in extended coordinates (X:Y:Z:T). */
class Point
{
  public:
    /** The neutral element (0, 1). */
    Point();

    /** The RFC 8032 base point B. */
    static const Point &base();

    /**
     * Decompress an RFC 8032 encoding.
     *
     * @return false when @p in is not a valid curve point (the caller
     *         must treat that as a protocol error, not a crash).
     */
    static bool fromBytes(const uint8_t in[kPointBytes], Point &out);

    /** Compress to the canonical 32-byte RFC 8032 encoding. */
    void toBytes(uint8_t out[kPointBytes]) const;

    Point add(const Point &o) const;
    Point sub(const Point &o) const;
    Point dbl() const;

    /** Variable-base scalar multiplication k*P (double-and-add). */
    static Point mul(const Scalar &k, const Point &p);

    /** Canonical-encoding equality (compares compressed bytes). */
    bool equals(const Point &o) const;

    bool isIdentity() const;

  private:
    // Field element mod 2^255-19: five unsaturated 51-bit limbs.
    struct Fe
    {
        uint64_t v[5];
    };

    Fe X_, Y_, Z_, T_;
};

} // namespace ec
} // namespace haac

#endif // HAAC_CRYPTO_CURVE25519_H
