/**
 * @file
 * Portable software AES-128 (FIPS-197).
 *
 * HAAC's Half-Gate units hash labels with AES using *re-keying*: every
 * hash uses a fresh key derived from the gate index, so the 176-byte key
 * expansion runs per hash (Fig. 2 of the paper). This module exposes the
 * key schedule separately from block encryption so both the re-keying
 * and fixed-key constructions (and the 27.5% cost ablation between them)
 * can be expressed.
 *
 * This is an encryption-only implementation (GC never decrypts AES).
 */
#ifndef HAAC_CRYPTO_AES128_H
#define HAAC_CRYPTO_AES128_H

#include <array>
#include <cstdint>

#include "crypto/label.h"

namespace haac {

/** Number of 16-byte round keys for AES-128 (the 176-byte schedule). */
inline constexpr int kAesRounds = 10;
inline constexpr size_t kAesExpandedKeyBytes = 16 * (kAesRounds + 1);

/**
 * An expanded AES-128 key schedule.
 *
 * Construction runs the FIPS-197 key expansion; this is the unit of
 * work the paper's "key expand" boxes represent.
 */
class Aes128
{
  public:
    /** Expand a 16-byte key. */
    explicit Aes128(const uint8_t key[16]);

    /** Expand a key held in a Label (little-endian serialization). */
    explicit Aes128(const Label &key);

    /** Encrypt one 16-byte block in place semantics: out may alias in. */
    void encryptBlock(const uint8_t in[16], uint8_t out[16]) const;

    /** Encrypt a Label-typed block. */
    Label encryptBlock(const Label &in) const;

    /** Raw access to the 176-byte schedule (for tests). */
    const std::array<uint8_t, kAesExpandedKeyBytes> &
    roundKeys() const
    {
        return roundKeys_;
    }

  private:
    std::array<uint8_t, kAesExpandedKeyBytes> roundKeys_{};
};

} // namespace haac

#endif // HAAC_CRYPTO_AES128_H
