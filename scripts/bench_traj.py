#!/usr/bin/env python3
"""Normalize a BENCH_*.json trajectory for regen-and-diff CI checks.

Bench binaries append one RunReport JSON object per line (see
bench/harness.h RunLog). Most fields are deterministic — byte counts,
gate counts, cache/pool counters, outputs — but anything derived from
host wall-clock time varies per run and per machine. This script
strips exactly those fields (recursively, so nested net/serve sections
are covered) and re-emits the records with sorted keys, one per line,
so a freshly regenerated trajectory can be diffed byte-for-byte
against the committed one under bench/trajectories/.

Usage:
    bench_traj.py BENCH_net_wire_traffic.json            # to stdout
    bench_traj.py BENCH_server_qps.json -o normalized.json
"""

import argparse
import json
import sys

# Host-timing-derived fields; everything else must be deterministic.
VOLATILE = {
    "host_seconds",
    "modeled_seconds",
    "seconds",
    "gates_per_sec",
    "wire_bytes_per_sec",
    "gates_per_second",
    "queries_per_second",
    # Transport description ("loopback:a", "tcp:127.0.0.1:40123");
    # carries an ephemeral port for TCP benches.
    "endpoint",
}


def normalize(obj):
    if isinstance(obj, dict):
        return {
            k: normalize(v) for k, v in obj.items() if k not in VOLATILE
        }
    if isinstance(obj, list):
        return [normalize(v) for v in obj]
    return obj


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trajectory", help="BENCH_*.json (JSON Lines)")
    ap.add_argument("-o", "--output", help="write here instead of stdout")
    args = ap.parse_args()

    lines = []
    with open(args.trajectory) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            lines.append(
                json.dumps(normalize(json.loads(line)), sort_keys=True)
            )

    out = sys.stdout if args.output is None else open(args.output, "w")
    for line in lines:
        print(line, file=out)
    if args.output is not None:
        out.close()


if __name__ == "__main__":
    main()
