# Cross-compile for aarch64 Linux with the distro cross toolchain and
# run test binaries under qemu-user — how CI exercises the portable
# (non-AES-NI) crypto path on a real non-x86 target:
#
#   cmake -B build-arm -S . \
#     -DCMAKE_TOOLCHAIN_FILE=cmake/toolchains/aarch64-linux-gnu.cmake
#   cmake --build build-arm -j && ctest --test-dir build-arm
#
# Needs: g++-aarch64-linux-gnu, qemu-user, and libgtest-dev (the
# /usr/src/googletest source tree is architecture-independent and is
# rebuilt with the cross compiler).

set(CMAKE_SYSTEM_NAME Linux)
set(CMAKE_SYSTEM_PROCESSOR aarch64)

set(CMAKE_C_COMPILER aarch64-linux-gnu-gcc)
set(CMAKE_CXX_COMPILER aarch64-linux-gnu-g++)

# Never pick up host (x86) libraries or headers; programs (e.g. the
# compilers themselves) still come from the host.
set(CMAKE_FIND_ROOT_PATH /usr/aarch64-linux-gnu)
set(CMAKE_FIND_ROOT_PATH_MODE_PROGRAM NEVER)
set(CMAKE_FIND_ROOT_PATH_MODE_LIBRARY ONLY)
set(CMAKE_FIND_ROOT_PATH_MODE_INCLUDE ONLY)
set(CMAKE_FIND_ROOT_PATH_MODE_PACKAGE ONLY)

# ctest runs every test binary through qemu (-L points the emulated
# dynamic linker at the cross sysroot).
set(CMAKE_CROSSCOMPILING_EMULATOR "qemu-aarch64;-L;/usr/aarch64-linux-gnu")
